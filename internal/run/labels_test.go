package run

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/spec"
)

func newTestBitset(n int) bitset.Set { return bitset.New(n) }

// bitsetKey renders a step/data member pair canonically for comparison.
func bitsetKey(steps, data bitset.Set) string {
	var b strings.Builder
	b.WriteString("s{")
	steps.Each(func(i int32) { b.WriteString(itoa(int(i)) + ",") })
	b.WriteString("} d{")
	data.Each(func(i int32) { b.WriteString(itoa(int(i)) + ",") })
	b.WriteString("}")
	return b.String()
}

func bitsetKeyMaps(steps, data map[int32]bool) string {
	render := func(m map[int32]bool) string {
		ids := make([]int, 0, len(m))
		for id := range m {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		var b strings.Builder
		for _, id := range ids {
			b.WriteString(itoa(id) + ",")
		}
		return b.String()
	}
	return "s{" + render(steps) + "} d{" + render(data) + "}"
}

// randomDAGRun decodes a byte string into a small layered DAG run: step Si
// may only read data produced by steps Sj with j < i (plus external
// inputs), so the run is acyclic by construction. The run is not required
// to pass Validate — labels only need the compact index — which lets the
// fuzzer explore shapes (disconnected steps, sink-less branches) that full
// run validation would reject.
func randomDAGRun(t testing.TB, raw []byte) *Run {
	t.Helper()
	n := 2 + int(byteAt(raw, 0))%14 // 2..15 steps
	r := NewRun("fuzz", "none")
	for i := 0; i < n; i++ {
		if err := r.AddStep("S"+itoa(i), "M"+itoa(i%3)); err != nil {
			t.Fatal(err)
		}
	}
	pos := 1
	for j := 1; j < n; j++ {
		// Each step gets 0..2 producing predecessors and maybe an external
		// input, each edge carrying one fresh data object.
		preds := int(byteAt(raw, pos)) % 3
		pos++
		for e := 0; e < preds; e++ {
			i := int(byteAt(raw, pos)) % j
			pos++
			if err := r.AddFlow("S"+itoa(i), "S"+itoa(j), []string{"d" + itoa(i) + "_" + itoa(j) + "_" + itoa(e)}); err != nil {
				t.Fatal(err)
			}
		}
		if byteAt(raw, pos)%2 == 0 {
			if err := r.AddFlow(spec.Input, "S"+itoa(j), []string{"x" + itoa(j)}); err != nil {
				t.Fatal(err)
			}
		}
		pos++
	}
	if err := r.AddFlow(spec.Input, "S0", []string{"x0"}); err != nil {
		t.Fatal(err)
	}
	return r
}

func byteAt(raw []byte, i int) byte {
	if len(raw) == 0 {
		return 0
	}
	return raw[i%len(raw)]
}

// bipartiteClosure rebuilds the combined provenance DAG as a string graph
// and computes its transitive closure — the independent oracle every label
// answer is compared against.
func bipartiteClosure(ix *Index) *graph.Closure {
	g := graph.New()
	for s := 0; s < ix.NumSteps(); s++ {
		g.AddNode("s:" + ix.StepName(int32(s)))
	}
	for d := 0; d < ix.NumData(); d++ {
		name := "d:" + ix.DataName(int32(d))
		g.AddNode(name)
		if p := ix.Producer(int32(d)); p >= 0 {
			g.AddEdge("s:"+ix.StepName(p), name)
		}
		for _, s := range ix.ConsumersOf(int32(d)) {
			g.AddEdge(name, "s:"+ix.StepName(s))
		}
	}
	return g.TransitiveClosure()
}

// nodeName maps a combined label node id to its oracle graph id.
func nodeName(ix *Index, v int32) string {
	if int(v) < ix.NumSteps() {
		return "s:" + ix.StepName(v)
	}
	return "d:" + ix.DataName(v-int32(ix.NumSteps()))
}

// checkLabelsAgainstOracle cross-checks Reach for every node pair against
// the graph transitive closure (which counts paths of length >= 1, so the
// diagonal is special-cased: Reach is reflexive), and the materialized
// Provenance/Derivation sets against a direct BFS over the index.
func checkLabelsAgainstOracle(t testing.TB, ix *Index, l *Labels) {
	t.Helper()
	cl := bipartiteClosure(ix)
	n := int32(l.NumNodes())
	for u := int32(0); u < n; u++ {
		for v := int32(0); v < n; v++ {
			want := u == v || cl.Reachable(nodeName(ix, u), nodeName(ix, v))
			if got := l.Reach(u, v); got != want {
				t.Fatalf("Reach(%s, %s) = %v, oracle %v",
					nodeName(ix, u), nodeName(ix, v), got, want)
			}
		}
	}
	// Provenance of every data object: the ancestors-or-self of its node.
	for d := int32(0); d < int32(ix.NumData()); d++ {
		stepBits := newTestBitset(ix.NumSteps())
		dataBits := newTestBitset(ix.NumData())
		l.ProvenanceInto(d, stepBits, dataBits)
		wantSteps, wantData := bfsProvenance(ix, d)
		if got := bitsetKey(stepBits, dataBits); got != bitsetKeyMaps(wantSteps, wantData) {
			t.Fatalf("ProvenanceInto(%s): %s, BFS %s",
				ix.DataName(d), got, bitsetKeyMaps(wantSteps, wantData))
		}
		stepBits.Reset()
		dataBits.Reset()
		l.DerivationInto(d, stepBits, dataBits)
		wantSteps, wantData = bfsDerivation(ix, d)
		if got := bitsetKey(stepBits, dataBits); got != bitsetKeyMaps(wantSteps, wantData) {
			t.Fatalf("DerivationInto(%s): %s, BFS %s",
				ix.DataName(d), got, bitsetKeyMaps(wantSteps, wantData))
		}
	}
}

// bfsProvenance is the reference backward traversal, mirroring the
// warehouse's indexedProvenanceClosure without importing it.
func bfsProvenance(ix *Index, root int32) (steps, data map[int32]bool) {
	steps, data = map[int32]bool{}, map[int32]bool{root: true}
	stack := []int32{root}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		p := ix.Producer(cur)
		if p < 0 || steps[p] {
			continue
		}
		steps[p] = true
		for _, in := range ix.InputsOf(p) {
			if !data[in] {
				data[in] = true
				stack = append(stack, in)
			}
		}
	}
	return steps, data
}

// bfsDerivation is the reference forward traversal.
func bfsDerivation(ix *Index, root int32) (steps, data map[int32]bool) {
	steps, data = map[int32]bool{}, map[int32]bool{root: true}
	stack := []int32{root}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range ix.ConsumersOf(cur) {
			if steps[s] {
				continue
			}
			steps[s] = true
			for _, out := range ix.OutputsOf(s) {
				if !data[out] {
					data[out] = true
					stack = append(stack, out)
				}
			}
		}
	}
	return steps, data
}

// TestLabelsFigure2 pins the labels on the paper's running example.
func TestLabelsFigure2(t *testing.T) {
	ix := Figure2().Index()
	l := ix.BuildLabels()
	if l == nil {
		t.Fatal("BuildLabels declined Figure 2")
	}
	st := l.Stats()
	if st.Nodes != ix.NumSteps()+ix.NumData() {
		t.Fatalf("Nodes = %d, want %d", st.Nodes, ix.NumSteps()+ix.NumData())
	}
	if st.Chains < 1 || st.Chains > st.Nodes {
		t.Fatalf("implausible chain count %d for %d nodes", st.Chains, st.Nodes)
	}
	checkLabelsAgainstOracle(t, ix, l)
}

// TestLabelsProperties checks the quickcheck-style label laws on random
// DAGs: reflexivity on self, antisymmetry between distinct nodes, and
// exact agreement with the transitive-closure oracle.
func TestLabelsProperties(t *testing.T) {
	f := func(raw []byte) bool {
		ix := randomDAGRun(t, raw).Index()
		l := ix.BuildLabels()
		if l == nil {
			return false // these runs are far below the label budget
		}
		n := int32(l.NumNodes())
		for u := int32(0); u < n; u++ {
			if !l.Reach(u, u) {
				return false
			}
			for v := u + 1; v < n; v++ {
				if l.Reach(u, v) && l.Reach(v, u) {
					return false
				}
			}
		}
		checkLabelsAgainstOracle(t, ix, l)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLabelsRelabelingAgreement builds the same DAG twice — once with the
// generated names and once under a renaming that reverses the interning
// (and hence topological tie-breaking) order — and checks that Reach
// agrees across the two label indexes on every corresponding pair. The
// decompositions may differ; the relation may not.
func TestLabelsRelabelingAgreement(t *testing.T) {
	f := func(raw []byte) bool {
		r1 := randomDAGRun(t, raw)
		ix1 := r1.Index()
		// Rebuild with renamed ids: step Si -> Zk where k reverses the
		// index, data names prefixed so natural order flips relative
		// positions. The structure (who produces/consumes what) is copied
		// through the rename map.
		ren := func(id string) string { return "zz" + id }
		r2 := NewRun("fuzz2", "none")
		for s := 0; s < ix1.NumSteps(); s++ {
			name := ix1.StepName(int32(s))
			st, _ := r1.Step(name)
			if err := r2.AddStep(ren(name), st.Module); err != nil {
				t.Fatal(err)
			}
		}
		for d := 0; d < ix1.NumData(); d++ {
			name := ix1.DataName(int32(d))
			from := spec.Input
			if p := ix1.Producer(int32(d)); p >= 0 {
				from = ren(ix1.StepName(p))
			}
			consumers := ix1.ConsumersOf(int32(d))
			if len(consumers) == 0 {
				continue // run construction only records data on edges
			}
			for _, s := range consumers {
				if err := r2.AddFlow(from, ren(ix1.StepName(s)), []string{ren(name)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		ix2 := r2.Index()
		l1, l2 := ix1.BuildLabels(), ix2.BuildLabels()
		if l1 == nil || l2 == nil {
			return false
		}
		// Compare on pairs that exist in both runs (unconsumed data is
		// absent from the rebuilt run).
		node2 := func(v int32) (int32, bool) {
			if int(v) < ix1.NumSteps() {
				s, ok := ix2.StepID(ren(ix1.StepName(v)))
				return l2.StepNode(s), ok
			}
			d, ok := ix2.DataID(ren(ix1.DataName(v - int32(ix1.NumSteps()))))
			return l2.DataNode(d), ok
		}
		n := int32(l1.NumNodes())
		for u := int32(0); u < n; u++ {
			u2, okU := node2(u)
			if !okU {
				continue
			}
			for v := int32(0); v < n; v++ {
				v2, okV := node2(v)
				if !okV {
					continue
				}
				if l1.Reach(u, v) != l2.Reach(u2, v2) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLabelsDeclineWideRun pins the fallback contract: a run whose step
// graph is wider than the chain budget — here maxLabelChains+1 mutually
// independent steps, each its own chain — gets no labels (and the
// warehouse then counts a BFS fallback instead of consulting a half-built
// index). Note data fan-out alone no longer declines: only steps are
// labeled, so width is measured on the step graph.
func TestLabelsDeclineWideRun(t *testing.T) {
	r := NewRun("wide", "none")
	for i := 0; i < maxLabelChains+1; i++ {
		if err := r.AddStep("S"+itoa(i), "M"); err != nil {
			t.Fatal(err)
		}
		if err := r.AddFlow(spec.Input, "S"+itoa(i), []string{"w" + itoa(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if l := r.Index().BuildLabels(); l != nil {
		t.Fatalf("BuildLabels accepted %d-parallel-step run (chains=%d), want decline",
			maxLabelChains+1, l.NumChains())
	}
}

// TestLabelsWideDataFanOut pins the flip side: a run with heavy data
// fan-out but a narrow step graph must still get labels. One producing
// step with maxLabelChains+1 outputs all feeding one consumer is two
// steps and one chain — under bipartite labeling it would have declined.
func TestLabelsWideDataFanOut(t *testing.T) {
	r := NewRun("fanout", "none")
	if err := r.AddStep("P", "M"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddStep("C", "M"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddFlow(spec.Input, "P", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	wide := make([]string, maxLabelChains+1)
	for i := range wide {
		wide[i] = "w" + itoa(i)
	}
	if err := r.AddFlow("P", "C", wide); err != nil {
		t.Fatal(err)
	}
	ix := r.Index()
	l := ix.BuildLabels()
	if l == nil {
		t.Fatal("BuildLabels declined a 2-step run over data fan-out")
	}
	if got := l.NumChains(); got != 1 {
		t.Fatalf("NumChains = %d, want 1 (P→C is one path)", got)
	}
	// Spot-check the relation across the fan-out (the full oracle sweep is
	// quadratic in 4k nodes; the shape is pinned well enough by a sample).
	p, _ := ix.StepID("P")
	c, _ := ix.StepID("C")
	w0, _ := ix.DataID("w0")
	x, _ := ix.DataID("x")
	if !l.Reach(l.StepNode(p), l.StepNode(c)) {
		t.Fatal("P should reach C")
	}
	if l.Reach(l.StepNode(c), l.StepNode(p)) {
		t.Fatal("C should not reach P")
	}
	if !l.Reach(l.DataNode(x), l.DataNode(w0)) {
		t.Fatal("x should reach w0")
	}
	stepBits := newTestBitset(ix.NumSteps())
	dataBits := newTestBitset(ix.NumData())
	l.ProvenanceInto(w0, stepBits, dataBits)
	wantSteps, wantData := bfsProvenance(ix, w0)
	if got := bitsetKey(stepBits, dataBits); got != bitsetKeyMaps(wantSteps, wantData) {
		t.Fatalf("ProvenanceInto(w0): %s, BFS %s", got, bitsetKeyMaps(wantSteps, wantData))
	}
	stepBits.Reset()
	dataBits.Reset()
	l.DerivationInto(x, stepBits, dataBits)
	wantSteps, wantData = bfsDerivation(ix, x)
	if got := bitsetKey(stepBits, dataBits); got != bitsetKeyMaps(wantSteps, wantData) {
		t.Fatalf("DerivationInto(x): %s, BFS %s", got, bitsetKeyMaps(wantSteps, wantData))
	}
}

// FuzzReachLabels cross-checks every Reach answer and every materialized
// closure on fuzzer-shaped DAGs against the transitive-closure oracle.
func FuzzReachLabels(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 1, 0, 2, 1, 1, 0, 2, 2, 0, 1})
	f.Add([]byte{15, 2, 0, 1, 1, 2, 3, 0, 2, 4, 1, 5, 0, 2, 6, 3, 1})
	f.Add([]byte{3, 2, 0, 0, 0, 2, 1, 1, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ix := randomDAGRun(t, raw).Index()
		l := ix.BuildLabels()
		if l == nil {
			t.Fatalf("BuildLabels declined a %d-node fuzz run", ix.NumSteps()+ix.NumData())
		}
		checkLabelsAgainstOracle(t, ix, l)
	})
}
