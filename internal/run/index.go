package run

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/spec"
)

// Index is the compact, immutable representation of a run the warehouse
// queries against: every step and data id is interned to a dense int32 and
// the four adjacency relations the provenance traversals walk — data →
// producing step, step → input data, data → consuming steps, step → output
// data — are stored as CSR-style flat slices. A deep-provenance closure
// over this representation is an integer BFS plus two bit sets; the string
// world is only re-entered when a query result is materialized.
//
// Interned ids double as natural-order ranks: steps and data are interned
// in natural order (d2 before d10), so sorting a set of interned ids
// ascending *is* the paper's natural sort, with no digit re-parsing per
// comparison.
//
// An Index is a snapshot: it must only be built once the run is fully
// constructed (the warehouse builds it at load time, after validation).
// Mutating the run via AddStep/AddFlow discards any previously built index
// so a stale snapshot is never returned by Run.Index.
type Index struct {
	r *Run

	stepName []string // interned step id -> step name, natural order
	dataName []string // interned data id -> data name, natural order
	stepID   map[string]int32
	dataID   map[string]int32

	producer []int32 // data -> producing step, -1 when external

	inOff, inData   []int32 // step -> input data (CSR)
	outOff, outData []int32 // step -> output data (CSR)
	conOff, conStep []int32 // data -> consuming steps (CSR)

	finals bitset.Set // data flowing into OUTPUT
}

// Index returns the run's compact index, building it on first use. The
// index is cached; AddStep/AddFlow invalidate the cache, so the returned
// snapshot always matches the run's current contents. Safe for concurrent
// use once the run is no longer being mutated (the warehouse's contract).
func (r *Run) Index() *Index {
	r.indexMu.Lock()
	defer r.indexMu.Unlock()
	if r.index == nil {
		r.index = buildIndex(r)
	}
	return r.index
}

func buildIndex(r *Run) *Index {
	ix := &Index{
		r:        r,
		stepName: r.StepIDs(),  // natural order
		dataName: r.AllData(),  // natural order
	}
	ix.stepID = make(map[string]int32, len(ix.stepName))
	for i, s := range ix.stepName {
		ix.stepID[s] = int32(i)
	}
	ix.dataID = make(map[string]int32, len(ix.dataName))
	for i, d := range ix.dataName {
		ix.dataID[d] = int32(i)
	}

	ix.producer = make([]int32, len(ix.dataName))
	for i, d := range ix.dataName {
		p, _ := r.Producer(d)
		if p == "" {
			ix.producer[i] = -1
		} else {
			ix.producer[i] = ix.stepID[p]
		}
	}

	// Step-side CSR: inputs and outputs per interned step, both in natural
	// (= interned ascending) order because InputsOf/OutputsOf sort naturally.
	ix.inOff = make([]int32, len(ix.stepName)+1)
	ix.outOff = make([]int32, len(ix.stepName)+1)
	for i, s := range ix.stepName {
		for _, d := range r.InputsOf(s) {
			ix.inData = append(ix.inData, ix.dataID[d])
		}
		ix.inOff[i+1] = int32(len(ix.inData))
		for _, d := range r.OutputsOf(s) {
			ix.outData = append(ix.outData, ix.dataID[d])
		}
		ix.outOff[i+1] = int32(len(ix.outData))
	}

	// Data-side CSR: consuming steps per interned data id, ascending (the
	// Consumers accessor sorts lexicographically, so re-sort by id).
	ix.conOff = make([]int32, len(ix.dataName)+1)
	for i, d := range ix.dataName {
		for _, s := range r.Consumers(d) {
			ix.conStep = append(ix.conStep, ix.stepID[s])
		}
		row := ix.conStep[ix.conOff[i]:]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		ix.conOff[i+1] = int32(len(ix.conStep))
	}

	ix.finals = bitset.New(len(ix.dataName))
	for _, d := range r.InputsOf(spec.Output) {
		ix.finals.Add(ix.dataID[d])
	}
	return ix
}

// validateStructure checks Validate's invariants on the interned
// representation: the step relation implied by the flows is acyclic and
// every step is forward-reachable from INPUT and backward-reachable from
// OUTPUT. This walk is equivalent to the execution-graph walk because every
// flow's data objects are produced by the flow's source, so "t consumes
// data produced by s" holds exactly when the graph has edge s -> t, and
// INPUT/OUTPUT — a pure source and a pure sink — can never be on a cycle.
func (ix *Index) validateStructure() error {
	n := len(ix.stepName)
	r := ix.r

	// Acyclicity: Kahn's algorithm over the step relation. The (s, t) pairs
	// are enumerated identically in both passes (possibly repeated when s
	// feeds t several data objects), so the counts balance.
	indeg := make([]int32, n)
	for s := 0; s < n; s++ {
		for _, d := range ix.OutputsOf(int32(s)) {
			for _, t := range ix.ConsumersOf(d) {
				indeg[t]++
			}
		}
	}
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if indeg[s] == 0 {
			queue = append(queue, int32(s))
		}
	}
	done := 0
	for len(queue) > 0 {
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, d := range ix.OutputsOf(s) {
			for _, t := range ix.ConsumersOf(d) {
				if indeg[t]--; indeg[t] == 0 {
					queue = append(queue, t)
				}
			}
		}
	}
	if done != n {
		return fmt.Errorf("run %q: %w", r.id, ErrCyclicRun)
	}

	// Forward reach from INPUT: seed with the consumers of external data,
	// expand along the same step relation.
	fwd := make([]bool, n)
	queue = queue[:0]
	mark := func(t int32) {
		if !fwd[t] {
			fwd[t] = true
			queue = append(queue, t)
		}
	}
	for d, p := range ix.producer {
		if p < 0 {
			for _, t := range ix.ConsumersOf(int32(d)) {
				mark(t)
			}
		}
	}
	for len(queue) > 0 {
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, d := range ix.OutputsOf(s) {
			for _, t := range ix.ConsumersOf(d) {
				mark(t)
			}
		}
	}

	// Backward reach from OUTPUT: seed with the producers of final data,
	// expand along producers of each step's inputs.
	bwd := make([]bool, n)
	queue = queue[:0]
	markB := func(s int32) {
		if !bwd[s] {
			bwd[s] = true
			queue = append(queue, s)
		}
	}
	for d, p := range ix.producer {
		if p >= 0 && ix.finals.Has(int32(d)) {
			markB(p)
		}
	}
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, d := range ix.InputsOf(t) {
			if p := ix.producer[d]; p >= 0 {
				markB(p)
			}
		}
	}

	for s := 0; s < n; s++ {
		if !fwd[s] {
			return fmt.Errorf("run %q: step %q unreachable from INPUT: %w", r.id, ix.stepName[s], ErrDisconnected)
		}
		if !bwd[s] {
			return fmt.Errorf("run %q: step %q cannot reach OUTPUT: %w", r.id, ix.stepName[s], ErrDisconnected)
		}
	}
	return nil
}

// Run returns the run this index was built from.
func (ix *Index) Run() *Run { return ix.r }

// NumSteps returns the number of interned steps.
func (ix *Index) NumSteps() int { return len(ix.stepName) }

// NumData returns the number of interned data objects.
func (ix *Index) NumData() int { return len(ix.dataName) }

// StepID returns the interned id of a step name.
func (ix *Index) StepID(name string) (int32, bool) {
	id, ok := ix.stepID[name]
	return id, ok
}

// DataID returns the interned id of a data name.
func (ix *Index) DataID(name string) (int32, bool) {
	id, ok := ix.dataID[name]
	return id, ok
}

// StepName returns the step name of an interned id.
func (ix *Index) StepName(id int32) string { return ix.stepName[id] }

// DataName returns the data name of an interned id.
func (ix *Index) DataName(id int32) string { return ix.dataName[id] }

// Producer returns the interned producing step of a data id, or -1 when the
// data is external (user or workflow input).
func (ix *Index) Producer(d int32) int32 { return ix.producer[d] }

// InputsOf returns the interned input data of a step, ascending (= natural
// order). The slice aliases the index; callers must not mutate it.
func (ix *Index) InputsOf(s int32) []int32 { return ix.inData[ix.inOff[s]:ix.inOff[s+1]] }

// OutputsOf returns the interned output data of a step, ascending. The
// slice aliases the index; callers must not mutate it.
func (ix *Index) OutputsOf(s int32) []int32 { return ix.outData[ix.outOff[s]:ix.outOff[s+1]] }

// ConsumersOf returns the interned steps reading a data id. The slice
// aliases the index; callers must not mutate it.
func (ix *Index) ConsumersOf(d int32) []int32 { return ix.conStep[ix.conOff[d]:ix.conOff[d+1]] }

// IsFinal reports whether a data id flows into OUTPUT.
func (ix *Index) IsFinal(d int32) bool { return ix.finals.Has(d) }

// IndexStats describes an index's footprint — what the compact layout
// costs, and what each closure bitset pair over it costs.
type IndexStats struct {
	// Steps and Data are the interned id counts.
	Steps, Data int
	// CSRBytes is the total size of the flat adjacency arrays (offsets,
	// targets, and the producer column), at 4 bytes per int32.
	CSRBytes int
	// ClosureWords is the number of 64-bit words one step+data closure
	// bitset pair over this run occupies.
	ClosureWords int
}

// Stats returns the index's footprint.
func (ix *Index) Stats() IndexStats {
	ints := len(ix.producer) +
		len(ix.inOff) + len(ix.inData) +
		len(ix.outOff) + len(ix.outData) +
		len(ix.conOff) + len(ix.conStep)
	return IndexStats{
		Steps:        len(ix.stepName),
		Data:         len(ix.dataName),
		CSRBytes:     4 * ints,
		ClosureWords: (len(ix.stepName)+63)/64 + (len(ix.dataName)+63)/64,
	}
}

// String renders the footprint on one line.
func (s IndexStats) String() string {
	return fmt.Sprintf("steps=%d data=%d csr=%dB closure=%dw", s.Steps, s.Data, s.CSRBytes, s.ClosureWords)
}
