package run

import (
	"testing"
	"testing/quick"

	"repro/internal/spec"
)

// dataIDsFromRaw maps arbitrary uint16s onto data ids.
func dataIDsFromRaw(raw []uint16) []string {
	out := make([]string, len(raw))
	for i, v := range raw {
		out[i] = "d" + itoa(int(v)%500)
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Property: mergeDataIDs is idempotent, deduplicating, order-insensitive,
// and its output is naturally sorted.
func TestQuickMergeDataIDs(t *testing.T) {
	f := func(rawA, rawB []uint16) bool {
		a, b := dataIDsFromRaw(rawA), dataIDsFromRaw(rawB)
		m1 := mergeDataIDs(a, b)
		m2 := mergeDataIDs(b, a)
		if len(m1) != len(m2) {
			return false
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				return false
			}
		}
		// Sorted and deduplicated.
		for i := 1; i < len(m1); i++ {
			if !lessNatural(m1[i-1], m1[i]) {
				return false
			}
		}
		// Idempotent.
		m3 := mergeDataIDs(m1, m1)
		if len(m3) != len(m1) {
			return false
		}
		// Every input is present.
		set := make(map[string]bool, len(m1))
		for _, x := range m1 {
			set[x] = true
		}
		for _, x := range append(a, b...) {
			if !set[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: lessNatural is a strict total order on data ids — irreflexive,
// antisymmetric, and trichotomous.
func TestQuickLessNaturalTotalOrder(t *testing.T) {
	f := func(x, y uint16) bool {
		a, b := "d"+itoa(int(x)%1000), "d"+itoa(int(y)%1000)
		lt, gt := lessNatural(a, b), lessNatural(b, a)
		if a == b {
			return !lt && !gt
		}
		return lt != gt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: FormatDataSet collapses exactly the consecutive numeric runs —
// formatting the ids from DataIDs(a, b) with b-a >= 2 always produces one
// "a..b" range.
func TestQuickFormatRange(t *testing.T) {
	f := func(start uint8, span uint8) bool {
		a := int(start)
		b := a + int(span)%200 + 2
		got := FormatDataSet(DataIDs(a, b))
		want := "{d" + itoa(a) + "..d" + itoa(b) + "}"
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every execution of the Figure 1 specification is a valid,
// conformant run whose log replays losslessly, for arbitrary seeds and
// iteration ranges.
func TestQuickExecuteAlwaysValid(t *testing.T) {
	f := func(seed int64, iterRaw, userRaw uint8) bool {
		s := specFixture()
		iters := int(iterRaw)%6 + 1
		users := int(userRaw)%4 + 1
		r, events, err := Execute(s, Config{
			RunID:     "q",
			Seed:      seed,
			LoopIter:  [2]int{1, iters},
			UserInput: [2]int{1, users},
		})
		if err != nil {
			return false
		}
		if r.Validate() != nil || r.ConformsTo(s) != nil {
			return false
		}
		back, err := FromLog("q", s.Name(), events)
		if err != nil {
			return false
		}
		return back.NumSteps() == r.NumSteps() && back.NumData() == r.NumData()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// specFixture returns the Figure 1 specification.
func specFixture() *spec.Spec { return spec.Phylogenomics() }
