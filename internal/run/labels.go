package run

import (
	"fmt"
	"math"

	"repro/internal/bitset"
)

// Labels is an optional reachability label index over a run's compact
// Index, after Bao & Davidson's fine-grained dependency labeling for
// workflow views: instead of answering "does u reach v?" with a traversal,
// the run's step dependency DAG is decomposed into chains (vertex-disjoint
// paths found greedily in topological order — Jagadish's path cover),
// every step gets a (chain, position) coordinate, and each step stores two
// k-entry interval rows, one per chain:
//
//	anc[s][c]  = the largest position on chain c among the ancestors of s
//	             (including s itself), or -1 when no chain-c step reaches s
//	desc[s][c] = the smallest position on chain c among the descendants of
//	             s (including s itself), or "none"
//
// Because a chain is a path in the DAG, the chain-c ancestors of s are
// exactly the prefix of chain c up to anc[s][c], and its chain-c
// descendants are exactly the suffix from desc[s][c] — so step-to-step
// reach is one array read and one comparison, and a whole deep-provenance
// closure is k prefix scans over flat arrays, no traversal and no visited
// set.
//
// Only steps are labeled. The labels cover the induced step graph — an
// edge s → t whenever some output of s is an input of t — not the
// bipartite step/data DAG. Every data object has at most one producer, so
// data reachability is a single hop from step reachability: the deep
// provenance of d is the ancestors-or-self of its producer plus their
// inputs, and its deep derivation is the descendants-or-self of its
// consumers plus their outputs. Labeling data nodes too would grow the
// chain count with data fan-out (each extra output of a step starts a
// fresh chain), which is exactly what sinks wide generated runs; the step
// graph keeps k at the step DAG's width. Reach still accepts combined ids
// (step s is node s, data d is node NumSteps()+d) and resolves data
// operands through their producer or consumers.
//
// Labels cost O(ns·k) int32s for ns steps and k chains. Builds whose
// decomposition would exceed maxLabelChains chains or maxLabelBytes of
// label memory return nil, and the warehouse falls back to the bitset BFS
// for that run — the fallback contract DESIGN.md §12 spells out.
type Labels struct {
	ix *Index

	numSteps int32 // combined-id split: ids < numSteps are steps
	n        int32 // combined node count (steps + data)
	k        int32 // number of chains

	chainOf   []int32 // step -> its chain
	posOf     []int32 // step -> position on its chain
	chainOff  []int32 // chain -> offset into chainNode (len k+1)
	chainNode []int32 // chain members in position order, step ids

	anc  []int32 // ns×k row-major ancestor intervals, ancNone = none
	desc []int32 // ns×k row-major descendant intervals, descNone = none
}

const (
	ancNone  = int32(-1)
	descNone = int32(math.MaxInt32)

	// maxLabelChains and maxLabelBytes bound the label footprint. Wide
	// step graphs (thousands of parallel branches ⇒ many chains) would pay
	// O(ns·k) memory for little win; past either bound BuildLabels
	// declines and the warehouse counts a fallback instead.
	maxLabelChains = 4096
	maxLabelBytes  = 256 << 20
)

// BuildLabels computes the reachability label index for this run index, or
// returns nil when the step graph's chain decomposition exceeds the label
// budget (the caller must then keep using the BFS path). The build is a
// Kahn topological sort over the induced step graph plus two linear
// label-merge sweeps, done once at load time.
func (ix *Index) BuildLabels() *Labels {
	ns := int32(ix.NumSteps())
	n := ns + int32(ix.NumData())
	l := &Labels{ix: ix, numSteps: ns, n: n}

	// Induced step graph, deduplicated: steps connected by several data
	// objects contribute one edge. mark[t] remembers the last source step
	// that recorded an edge into t.
	preds := make([][]int32, ns)
	succs := make([][]int32, ns)
	mark := make([]int32, ns)
	for i := range mark {
		mark[i] = -1
	}
	for s := int32(0); s < ns; s++ {
		for _, d := range ix.OutputsOf(s) {
			for _, t := range ix.ConsumersOf(d) {
				if mark[t] == s {
					continue
				}
				mark[t] = s
				succs[s] = append(succs[s], t)
				preds[t] = append(preds[t], s)
			}
		}
	}

	// Kahn topological order with greedy chain assignment folded in: a
	// step extends the chain of the first predecessor that is still its
	// chain's tail (so every chain is a path and positions increase along
	// edges), otherwise it starts a new chain. The FIFO queue keeps the
	// decomposition deterministic for a given index.
	l.chainOf = make([]int32, ns)
	l.posOf = make([]int32, ns)
	indeg := make([]int32, ns)
	queue := make([]int32, 0, ns)
	for t := int32(0); t < ns; t++ {
		indeg[t] = int32(len(preds[t]))
		if indeg[t] == 0 {
			queue = append(queue, t)
		}
	}
	topo := make([]int32, 0, ns)
	var tails []int32 // chain -> current tail step
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		topo = append(topo, u)
		extended := false
		for _, p := range preds[u] {
			if c := l.chainOf[p]; tails[c] == p {
				l.chainOf[u] = c
				l.posOf[u] = l.posOf[p] + 1
				tails[c] = u
				extended = true
				break
			}
		}
		if !extended {
			l.chainOf[u] = int32(len(tails))
			l.posOf[u] = 0
			tails = append(tails, u)
		}
		for _, t := range succs[u] {
			if indeg[t]--; indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if int32(len(topo)) != ns {
		return nil // cyclic index; Validate rejects such runs upstream
	}
	l.k = int32(len(tails))
	if l.k > maxLabelChains || 8*int64(ns)*int64(l.k) > maxLabelBytes {
		return nil
	}

	// Chain CSR: members of each chain in position order.
	k := int(l.k)
	l.chainOff = make([]int32, k+1)
	for s := int32(0); s < ns; s++ {
		l.chainOff[l.chainOf[s]+1]++
	}
	for c := 0; c < k; c++ {
		l.chainOff[c+1] += l.chainOff[c]
	}
	l.chainNode = make([]int32, ns)
	for s := int32(0); s < ns; s++ {
		l.chainNode[l.chainOff[l.chainOf[s]]+l.posOf[s]] = s
	}

	// Ancestor labels: sweep in topological order, merging each
	// predecessor's row element-wise (max), then stamp the step's own
	// coordinate — its chain ancestors all sit at smaller positions, so
	// the stamp is the row maximum for its own chain.
	l.anc = make([]int32, int(ns)*k)
	for i := range l.anc {
		l.anc[i] = ancNone
	}
	for _, v := range topo {
		row := l.anc[int(v)*k : int(v)*k+k]
		for _, p := range preds[v] {
			prow := l.anc[int(p)*k : int(p)*k+k]
			for c, m := range prow {
				if m > row[c] {
					row[c] = m
				}
			}
		}
		row[l.chainOf[v]] = l.posOf[v]
	}

	// Descendant labels: the mirror sweep in reverse topological order
	// with element-wise min.
	l.desc = make([]int32, int(ns)*k)
	for i := range l.desc {
		l.desc[i] = descNone
	}
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		row := l.desc[int(v)*k : int(v)*k+k]
		for _, t := range succs[v] {
			trow := l.desc[int(t)*k : int(t)*k+k]
			for c, m := range trow {
				if m < row[c] {
					row[c] = m
				}
			}
		}
		row[l.chainOf[v]] = l.posOf[v]
	}
	return l
}

// Index returns the run index these labels were built over. The warehouse
// compares it by pointer identity to the run's current index before
// consulting the labels — a stale label set is never used.
func (l *Labels) Index() *Index { return l.ix }

// NumChains returns the number of chains in the decomposition.
func (l *Labels) NumChains() int { return int(l.k) }

// NumNodes returns the combined node count (steps + data).
func (l *Labels) NumNodes() int { return int(l.n) }

// StepNode returns the combined node id of an interned step id.
func (l *Labels) StepNode(s int32) int32 { return s }

// DataNode returns the combined node id of an interned data id.
func (l *Labels) DataNode(d int32) int32 { return l.numSteps + d }

// reachStep reports whether step s reaches step t in the step graph,
// reflexively: s is an ancestor-or-self of t iff t's ancestor bound on s's
// chain is at or past s's position.
func (l *Labels) reachStep(s, t int32) bool {
	return l.anc[int(t)*int(l.k)+int(l.chainOf[s])] >= l.posOf[s]
}

// Reach reports whether combined node u reaches combined node v in the
// bipartite provenance DAG — u is v or there is a directed path u → v.
// Reach is reflexive by construction (deep provenance includes its root);
// callers comparing against a path-length-≥1 closure must special-case
// u == v. Data operands are resolved through the step labels — a data
// target through its single producer, a data source through its consumers
// — so a data-to-* check costs one comparison per consumer. That keeps
// Reach off the closure hot path (ProvenanceInto and DerivationInto are
// what the warehouse serves queries with) while making the full bipartite
// relation checkable one pair at a time.
func (l *Labels) Reach(u, v int32) bool {
	if u == v {
		return true
	}
	ns := l.numSteps
	if v >= ns {
		// Data target: anything else that reaches it reaches (or is) its
		// single producer.
		p := l.ix.Producer(v - ns)
		if p < 0 {
			return false // external data has no proper ancestors
		}
		v = p
	}
	if u < ns {
		return l.reachStep(u, v)
	}
	// Data source: every path out of it starts at one of its consumers.
	for _, t := range l.ix.ConsumersOf(u - ns) {
		if l.reachStep(t, v) {
			return true
		}
	}
	return false
}

// ProvenanceInto adds the deep provenance of data object d — every step
// and data object that transitively contributed to it, d included — to the
// given bitsets. The steps are the ancestors-or-self of d's producer (one
// prefix scan per chain with any such ancestor); the data are d plus the
// inputs of those steps, exactly the set the warehouse's backward BFS
// marks.
func (l *Labels) ProvenanceInto(d int32, stepBits, dataBits bitset.Set) {
	dataBits.Add(d)
	p := l.ix.Producer(d)
	if p < 0 {
		return // external data: no producing steps, no further ancestry
	}
	k := int(l.k)
	row := l.anc[int(p)*k : int(p)*k+k]
	for c, m := range row {
		if m == ancNone {
			continue
		}
		off := l.chainOff[c]
		for _, s := range l.chainNode[off : off+m+1] {
			stepBits.Add(s)
			for _, in := range l.ix.InputsOf(s) {
				dataBits.Add(in)
			}
		}
	}
}

// DerivationInto adds the deep derivation of data object d — every step
// and data object transitively derived from it, d included — to the given
// bitsets. The steps are the descendants-or-self of d's consumers: the
// per-chain bound is the minimum over the consumers' desc rows (merged in
// a per-call buffer, so concurrent readers share nothing), each chain then
// contributing one suffix scan; the data are d plus the outputs of those
// steps.
func (l *Labels) DerivationInto(d int32, stepBits, dataBits bitset.Set) {
	dataBits.Add(d)
	cons := l.ix.ConsumersOf(d)
	if len(cons) == 0 {
		return
	}
	k := int(l.k)
	min := make([]int32, k)
	for c := range min {
		min[c] = descNone
	}
	for _, t := range cons {
		row := l.desc[int(t)*k : int(t)*k+k]
		for c, m := range row {
			if m < min[c] {
				min[c] = m
			}
		}
	}
	for c, m := range min {
		if m == descNone {
			continue
		}
		for _, s := range l.chainNode[l.chainOff[c]+m : l.chainOff[c+1]] {
			stepBits.Add(s)
			for _, out := range l.ix.OutputsOf(s) {
				dataBits.Add(out)
			}
		}
	}
}

// LabelStats describes a label index's shape and footprint.
type LabelStats struct {
	// Nodes is the combined node count (steps + data) Reach answers for,
	// Chains the size of the step graph's path cover (k). Only steps carry
	// interval rows: ns×Chains int32s per matrix.
	Nodes, Chains int
	// LabelBytes is the total label memory: both interval matrices plus the
	// chain coordinate and CSR arrays, at 4 bytes per int32.
	LabelBytes int
}

// Stats returns the label index's footprint.
func (l *Labels) Stats() LabelStats {
	ints := len(l.anc) + len(l.desc) +
		len(l.chainOf) + len(l.posOf) + len(l.chainOff) + len(l.chainNode)
	return LabelStats{Nodes: int(l.n), Chains: int(l.k), LabelBytes: 4 * ints}
}

// String renders the footprint on one line.
func (s LabelStats) String() string {
	return fmt.Sprintf("nodes=%d chains=%d labels=%dB", s.Nodes, s.Chains, s.LabelBytes)
}
