package run

import (
	"errors"
	"reflect"
	"testing"
)

func TestAnnotateInput(t *testing.T) {
	r := Figure2()
	if err := r.AnnotateInput("d1", map[string]string{"who": "joe"}); err != nil {
		t.Fatal(err)
	}
	if err := r.AnnotateInput("d1", map[string]string{"when": "2007-11-02"}); err != nil {
		t.Fatal(err)
	}
	got := r.InputMeta("d1")
	want := map[string]string{"who": "joe", "when": "2007-11-02"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("InputMeta = %v, want %v", got, want)
	}
	// Later values win.
	if err := r.AnnotateInput("d1", map[string]string{"who": "mary"}); err != nil {
		t.Fatal(err)
	}
	if r.InputMeta("d1")["who"] != "mary" {
		t.Fatal("merge did not overwrite")
	}
}

func TestAnnotateInputRejectsProducedData(t *testing.T) {
	r := Figure2()
	if err := r.AnnotateInput("d413", map[string]string{"who": "x"}); !errors.Is(err, ErrNotExternal) {
		t.Fatalf("produced data annotated: %v", err)
	}
	if err := r.AnnotateInput("d9999", nil); !errors.Is(err, ErrNotExternal) {
		t.Fatalf("unknown data annotated: %v", err)
	}
}

func TestInputMetaCopies(t *testing.T) {
	r := Figure2()
	if err := r.AnnotateInput("d2", map[string]string{"who": "joe"}); err != nil {
		t.Fatal(err)
	}
	m := r.InputMeta("d2")
	m["who"] = "tampered"
	if r.InputMeta("d2")["who"] != "joe" {
		t.Fatal("InputMeta aliases internal state")
	}
	if r.InputMeta("d3") != nil {
		t.Fatal("unannotated data should return nil")
	}
}

func TestAnnotatedInputsOrder(t *testing.T) {
	r := Figure2()
	for _, d := range []string{"d10", "d2", "d415"} {
		if err := r.AnnotateInput(d, map[string]string{"k": "v"}); err != nil {
			t.Fatal(err)
		}
	}
	got := r.AnnotatedInputs()
	if !reflect.DeepEqual(got, []string{"d2", "d10", "d415"}) {
		t.Fatalf("AnnotatedInputs = %v (natural order expected)", got)
	}
}
