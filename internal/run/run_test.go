package run

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/spec"
)

func TestAddStepValidation(t *testing.T) {
	r := NewRun("r1", "s")
	if err := r.AddStep("", "M1"); !errors.Is(err, ErrBadStep) {
		t.Fatalf("empty id: %v", err)
	}
	if err := r.AddStep("S1", ""); !errors.Is(err, ErrBadStep) {
		t.Fatalf("empty module: %v", err)
	}
	if err := r.AddStep(spec.Input, "M1"); !errors.Is(err, ErrBadStep) {
		t.Fatalf("reserved id: %v", err)
	}
	if err := r.AddStep("S1", "M1"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddStep("S1", "M2"); !errors.Is(err, ErrBadStep) {
		t.Fatalf("duplicate id: %v", err)
	}
}

func TestAddFlowValidation(t *testing.T) {
	r := NewRun("r1", "s")
	mustT(t, r.AddStep("S1", "M1"))
	mustT(t, r.AddStep("S2", "M2"))
	cases := []struct {
		name     string
		from, to string
		data     []string
		want     error
	}{
		{"from OUTPUT", spec.Output, "S1", []string{"d1"}, ErrBadFlow},
		{"into INPUT", "S1", spec.Input, []string{"d1"}, ErrBadFlow},
		{"self", "S1", "S1", []string{"d1"}, ErrBadFlow},
		{"no data", "S1", "S2", nil, ErrBadFlow},
		{"unknown step", "S1", "S9", []string{"d1"}, ErrBadFlow},
		{"empty data id", "S1", "S2", []string{""}, ErrBadFlow},
	}
	for _, tc := range cases {
		if err := r.AddFlow(tc.from, tc.to, tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	mustT(t, r.AddFlow("S1", "S2", []string{"d1"}))
}

func TestTwoProducersRejected(t *testing.T) {
	r := NewRun("r1", "s")
	mustT(t, r.AddStep("S1", "M1"))
	mustT(t, r.AddStep("S2", "M2"))
	mustT(t, r.AddStep("S3", "M3"))
	mustT(t, r.AddFlow("S1", "S3", []string{"d9"}))
	if err := r.AddFlow("S2", "S3", []string{"d9"}); !errors.Is(err, ErrTwoProducers) {
		t.Fatalf("second producer accepted: %v", err)
	}
	// Same producer on a second edge is fine (fan-out of one object).
	mustT(t, r.AddFlow("S1", "S2", []string{"d9"}))
	// External data conflicting with a produced one is rejected.
	if err := r.AddFlow(spec.Input, "S2", []string{"d9"}); !errors.Is(err, ErrTwoProducers) {
		t.Fatalf("external redefinition accepted: %v", err)
	}
}

func TestProducerConsumerAccounting(t *testing.T) {
	r := Figure2()
	if p, ok := r.Producer("d413"); !ok || p != "S6" {
		t.Fatalf("Producer(d413) = %q, %v", p, ok)
	}
	if p, ok := r.Producer("d1"); !ok || p != "" {
		t.Fatalf("Producer(d1) = %q, %v (should be external)", p, ok)
	}
	if !r.IsExternal("d415") || r.IsExternal("d413") {
		t.Fatal("IsExternal wrong")
	}
	if _, ok := r.Producer("d999"); ok {
		t.Fatal("unknown data has a producer")
	}
	if got := r.Consumers("d413"); !reflect.DeepEqual(got, []string{"S10"}) {
		t.Fatalf("Consumers(d413) = %v", got)
	}
}

func TestFigure2PaperFacts(t *testing.T) {
	r := Figure2()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.NumSteps() != 10 {
		t.Fatalf("NumSteps = %d, want 10 (S1..S10)", r.NumSteps())
	}
	// "the immediate provenance of the data object d413 ... is the step
	// with id S6, which is an instance of the module M4, and its input set
	// of data objects {d412}".
	if p, _ := r.Producer("d413"); p != "S6" {
		t.Fatalf("producer of d413 = %s", p)
	}
	if s, _ := r.Step("S6"); s.Module != "M4" {
		t.Fatalf("S6 module = %s", s.Module)
	}
	if got := r.InputsOf("S6"); !reflect.DeepEqual(got, []string{"d412"}) {
		t.Fatalf("InputsOf(S6) = %v", got)
	}
	// "S2, which is an instance of the module M3, and its input set of data
	// objects {d308,...,d408}".
	if s, _ := r.Step("S2"); s.Module != "M3" {
		t.Fatalf("S2 module = %s", s.Module)
	}
	if got := r.InputsOf("S2"); !reflect.DeepEqual(got, DataIDs(308, 408)) {
		t.Fatalf("InputsOf(S2) = %s", FormatDataSet(got))
	}
	// Two executions of M3: S2 and S5 (loop executed twice).
	if got := r.StepsOfModule("M3"); !reflect.DeepEqual(got, []string{"S2", "S5"}) {
		t.Fatalf("StepsOfModule(M3) = %v", got)
	}
	// d447 is the final output; d1..d100 the initial inputs.
	if got := r.FinalOutputs(); !reflect.DeepEqual(got, []string{"d447"}) {
		t.Fatalf("FinalOutputs = %v", got)
	}
	ext := r.ExternalInputs()
	if len(ext) != 131 { // d1..d100 plus d415..d445
		t.Fatalf("ExternalInputs count = %d, want 131", len(ext))
	}
	if ext[0] != "d1" || ext[100] != "d415" {
		t.Fatalf("ExternalInputs order wrong: %v ...", ext[:3])
	}
}

func TestFigure2ConformsToSpec(t *testing.T) {
	r := Figure2()
	s := spec.Phylogenomics()
	if err := r.ConformsTo(s); err != nil {
		t.Fatal(err)
	}
	// Wrong spec name.
	other := spec.New("other")
	if err := r.ConformsTo(other); !errors.Is(err, ErrNonConformant) {
		t.Fatalf("wrong spec accepted: %v", err)
	}
}

func TestConformsToCatchesBadEdges(t *testing.T) {
	s := spec.Phylogenomics()
	r := NewRun("bad", "phylogenomics")
	mustT(t, r.AddStep("S1", "M1"))
	mustT(t, r.AddStep("S2", "M7"))
	mustT(t, r.AddFlow(spec.Input, "S1", []string{"d1"}))
	mustT(t, r.AddFlow("S1", "S2", []string{"d2"})) // no spec edge M1 -> M7
	mustT(t, r.AddFlow("S2", spec.Output, []string{"d3"}))
	if err := r.ConformsTo(s); !errors.Is(err, ErrNonConformant) {
		t.Fatalf("bad flow accepted: %v", err)
	}
	r2 := NewRun("bad2", "phylogenomics")
	mustT(t, r2.AddStep("S1", "M99"))
	mustT(t, r2.AddFlow(spec.Input, "S1", []string{"d1"}))
	mustT(t, r2.AddFlow("S1", spec.Output, []string{"d2"}))
	if err := r2.ConformsTo(s); !errors.Is(err, ErrNonConformant) {
		t.Fatalf("unknown module accepted: %v", err)
	}
}

func TestValidateDisconnected(t *testing.T) {
	r := NewRun("r", "s")
	mustT(t, r.AddStep("S1", "M1"))
	mustT(t, r.AddStep("S2", "M2"))
	mustT(t, r.AddFlow(spec.Input, "S1", []string{"d1"}))
	mustT(t, r.AddFlow("S1", spec.Output, []string{"d2"}))
	mustT(t, r.AddFlow("S1", "S2", []string{"d3"}))
	if err := r.Validate(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("dead-end step accepted: %v", err)
	}
}

func TestNaturalOrdering(t *testing.T) {
	if !lessNatural("S2", "S10") {
		t.Fatal("S2 must sort before S10")
	}
	if !lessNatural("d9", "d308") {
		t.Fatal("d9 must sort before d308")
	}
	if lessNatural("d10", "d2") {
		t.Fatal("d10 must not sort before d2")
	}
	if !lessNatural("a1", "b1") {
		t.Fatal("prefix ordering broken")
	}
	r := Figure2()
	ids := r.StepIDs()
	if ids[0] != "S1" || ids[9] != "S10" || ids[1] != "S2" {
		t.Fatalf("StepIDs order: %v", ids)
	}
}

func TestDataIDsAndFormat(t *testing.T) {
	if got := DataIDs(3, 5); !reflect.DeepEqual(got, []string{"d3", "d4", "d5"}) {
		t.Fatalf("DataIDs = %v", got)
	}
	if DataIDs(5, 3) != nil {
		t.Fatal("inverted range should be nil")
	}
	if got := FormatDataSet([]string{"d5", "d3", "d4", "d10", "x"}); got != "{d3..d5, d10, x}" {
		t.Fatalf("FormatDataSet = %s", got)
	}
	if got := FormatDataSet(nil); got != "{}" {
		t.Fatalf("FormatDataSet(nil) = %s", got)
	}
	if got := FormatDataSet([]string{"d1", "d2"}); got != "{d1, d2}" {
		t.Fatalf("two elements must not collapse: %s", got)
	}
}

func TestInputsOutputsOfNodes(t *testing.T) {
	r := Figure2()
	if got := r.OutputsOf("S1"); !reflect.DeepEqual(got, append([]string{"d201"}, DataIDs(308, 408)...)) {
		t.Fatalf("OutputsOf(S1) = %s", FormatDataSet(got))
	}
	if got := r.InputsOf("S10"); !reflect.DeepEqual(got, []string{"d413", "d414", "d446"}) {
		t.Fatalf("InputsOf(S10) = %v", got)
	}
	if got := r.DataOn("S4", "S5"); !reflect.DeepEqual(got, []string{"d411"}) {
		t.Fatalf("DataOn(S4,S5) = %v", got)
	}
	if got := r.DataOn("S4", "S9"); got != nil && len(got) != 0 {
		t.Fatalf("DataOn of absent edge = %v", got)
	}
	// d1..d100 (100) + d201 + d202..d206 (5) + d308..d408 (101) +
	// d409..d414 (6) + d415..d445 (31) + d446 + d447 = 246.
	if r.NumData() != 246 {
		t.Fatalf("NumData = %d", r.NumData())
	}
}

func mustT(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
