package run

import (
	"fmt"
	"sort"

	"repro/internal/spec"
)

// Flow is one dataflow edge of a run in table form: the data objects that
// passed from one node to another. It is the row type snapshot loaders feed
// to Reconstruct.
type Flow struct {
	From string
	To   string
	Data []string
}

// Reconstruct bulk-builds a run from its relational tables — the warehouse
// snapshot loader's fast path. It enforces exactly the invariants AddStep
// and AddFlow enforce (unique steps, known endpoints, single producer per
// data object, non-empty data on every edge), but skips the per-edge
// merge-and-sort work AddFlow pays to keep the run consistent under
// arbitrary interactive mutation:
//
//   - a flow whose data is already in natural order (which every snapshot
//     written by Save is) is installed without copying or re-sorting;
//   - consumer lists are accumulated by append and sorted once at the end,
//     instead of sorted-insert per (data, step) pair.
//
// Input that violates the sortedness assumption (a hand-edited snapshot) is
// normalized through the same merge path AddFlow uses, so Reconstruct never
// trusts its input with correctness — only with performance.
func Reconstruct(id, specName string, steps []Step, flows []Flow, meta map[string]map[string]string) (*Run, error) {
	r := NewRun(id, specName)
	for _, st := range steps {
		if err := r.AddStep(st.ID, st.Module); err != nil {
			return nil, err
		}
	}
	for _, f := range flows {
		if err := r.addFlowBulk(f.From, f.To, f.Data); err != nil {
			return nil, err
		}
	}
	// Consumer lists were appended in flow order; sort and deduplicate each
	// once, restoring AddFlow's sorted-unique invariant.
	for d, cs := range r.consumers {
		sort.Strings(cs)
		out := cs[:0]
		for i, s := range cs {
			if i == 0 || s != out[len(out)-1] {
				out = append(out, s)
			}
		}
		r.consumers[d] = out
	}
	for d, m := range meta {
		if err := r.AnnotateInput(d, m); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// addFlowBulk is AddFlow minus the per-edge normalization cost; see
// Reconstruct for the contract.
func (r *Run) addFlowBulk(from, to string, data []string) error {
	if from == spec.Output || to == spec.Input {
		return fmt.Errorf("%w: direction %s -> %s", ErrBadFlow, from, to)
	}
	if from == to {
		return fmt.Errorf("%w: self flow on %s", ErrBadFlow, from)
	}
	if len(data) == 0 {
		return fmt.Errorf("%w: edge %s -> %s carries no data", ErrBadFlow, from, to)
	}
	for _, end := range []string{from, to} {
		if end == spec.Input || end == spec.Output {
			continue
		}
		if _, ok := r.steps[end]; !ok {
			return fmt.Errorf("%w: unknown step %q", ErrBadFlow, end)
		}
	}
	producer := ""
	if from != spec.Input {
		producer = from
	}
	for _, d := range data {
		if d == "" {
			return fmt.Errorf("%w: empty data id on %s -> %s", ErrBadFlow, from, to)
		}
		if prev, seen := r.producer[d]; seen {
			if prev != producer {
				return fmt.Errorf("%w: %q produced by %q and %q", ErrTwoProducers, d, prev, producer)
			}
		} else {
			r.producer[d] = producer
		}
	}
	key := [2]string{from, to}
	switch existing := r.edgeData[key]; {
	case existing == nil && sortedUniqueNatural(data):
		r.edgeData[key] = data
	default:
		// Duplicate edge or unsorted data: fall back to the merge path.
		r.edgeData[key] = mergeDataIDs(existing, data)
	}
	r.g.AddEdge(from, to)
	if to != spec.Output {
		for _, d := range data {
			r.consumers[d] = append(r.consumers[d], to)
		}
	}
	r.index = nil
	return nil
}

// sortedUniqueNatural reports whether xs is strictly increasing under the
// natural order — the form AddFlow and Save maintain.
func sortedUniqueNatural(xs []string) bool {
	for i := 1; i < len(xs); i++ {
		if !lessNatural(xs[i-1], xs[i]) {
			return false
		}
	}
	return true
}
