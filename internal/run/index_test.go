package run

import (
	"testing"
)

// TestIndexInterning pins the interning contract: ids are dense, interned
// order is natural order, and names round-trip.
func TestIndexInterning(t *testing.T) {
	r := Figure2()
	ix := r.Index()
	if ix.NumSteps() != r.NumSteps() || ix.NumData() != r.NumData() {
		t.Fatalf("interned %d/%d, run has %d/%d", ix.NumSteps(), ix.NumData(), r.NumSteps(), r.NumData())
	}
	steps := r.StepIDs() // natural order
	for i, s := range steps {
		id, ok := ix.StepID(s)
		if !ok || id != int32(i) {
			t.Fatalf("step %q interned as (%d,%v), want %d", s, id, ok, i)
		}
		if ix.StepName(id) != s {
			t.Fatalf("step id %d names %q, want %q", id, ix.StepName(id), s)
		}
	}
	data := r.AllData() // natural order
	for i, d := range data {
		id, ok := ix.DataID(d)
		if !ok || id != int32(i) {
			t.Fatalf("data %q interned as (%d,%v), want %d", d, id, ok, i)
		}
		if ix.DataName(id) != d {
			t.Fatalf("data id %d names %q, want %q", id, ix.DataName(id), d)
		}
	}
	if _, ok := ix.StepID("nope"); ok {
		t.Fatal("unknown step interned")
	}
	if _, ok := ix.DataID("nope"); ok {
		t.Fatal("unknown data interned")
	}
}

// TestIndexAdjacency checks every CSR relation against the run's map-level
// answers: producer column, step inputs/outputs, data consumers, finals.
func TestIndexAdjacency(t *testing.T) {
	r := Figure2()
	ix := r.Index()
	for _, d := range r.AllData() {
		id, _ := ix.DataID(d)
		p, _ := r.Producer(d)
		if p == "" {
			if ix.Producer(id) != -1 {
				t.Fatalf("external %s has producer %d", d, ix.Producer(id))
			}
		} else if ix.StepName(ix.Producer(id)) != p {
			t.Fatalf("producer of %s = %s, want %s", d, ix.StepName(ix.Producer(id)), p)
		}
		want := r.Consumers(d)
		got := ix.ConsumersOf(id)
		if len(got) != len(want) {
			t.Fatalf("consumers of %s: %d vs %d", d, len(got), len(want))
		}
		seen := make(map[string]bool)
		for _, s := range got {
			seen[ix.StepName(s)] = true
		}
		for _, s := range want {
			if !seen[s] {
				t.Fatalf("consumer %s of %s missing", s, d)
			}
		}
	}
	for _, s := range r.StepIDs() {
		sid, _ := ix.StepID(s)
		for name, pair := range map[string][2][]string{
			"inputs":  {r.InputsOf(s), names(ix, ix.InputsOf(sid))},
			"outputs": {r.OutputsOf(s), names(ix, ix.OutputsOf(sid))},
		} {
			want, got := pair[0], pair[1]
			if len(want) != len(got) {
				t.Fatalf("%s of %s: %v vs %v", name, s, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s of %s out of order: %v vs %v", name, s, got, want)
				}
			}
		}
	}
	finals := make(map[string]bool)
	for _, d := range r.FinalOutputs() {
		finals[d] = true
	}
	for _, d := range r.AllData() {
		id, _ := ix.DataID(d)
		if ix.IsFinal(id) != finals[d] {
			t.Fatalf("IsFinal(%s) = %v, want %v", d, ix.IsFinal(id), finals[d])
		}
	}
}

func names(ix *Index, ids []int32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = ix.DataName(id)
	}
	return out
}

// TestIndexInvalidation: mutating the run discards the cached snapshot, and
// the rebuilt index sees the new contents.
func TestIndexInvalidation(t *testing.T) {
	r := NewRun("inv", "spec")
	if err := r.AddStep("S1", "M1"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddFlow("INPUT", "S1", []string{"d1"}); err != nil {
		t.Fatal(err)
	}
	ix1 := r.Index()
	if ix1.NumSteps() != 1 || ix1.NumData() != 1 {
		t.Fatalf("initial index: %d steps %d data", ix1.NumSteps(), ix1.NumData())
	}
	if r.Index() != ix1 {
		t.Fatal("unchanged run rebuilt its index")
	}
	if err := r.AddStep("S2", "M2"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddFlow("S1", "S2", []string{"d2"}); err != nil {
		t.Fatal(err)
	}
	ix2 := r.Index()
	if ix2 == ix1 {
		t.Fatal("mutated run returned stale index")
	}
	if ix2.NumSteps() != 2 || ix2.NumData() != 2 {
		t.Fatalf("rebuilt index: %d steps %d data", ix2.NumSteps(), ix2.NumData())
	}
}

// TestIndexStats sanity-checks the footprint arithmetic.
func TestIndexStats(t *testing.T) {
	ix := Figure2().Index()
	st := ix.Stats()
	if st.Steps != ix.NumSteps() || st.Data != ix.NumData() {
		t.Fatalf("stats counts wrong: %+v", st)
	}
	if st.CSRBytes <= 0 || st.CSRBytes%4 != 0 {
		t.Fatalf("CSRBytes = %d", st.CSRBytes)
	}
	wantWords := (ix.NumSteps()+63)/64 + (ix.NumData()+63)/64
	if st.ClosureWords != wantWords {
		t.Fatalf("ClosureWords = %d, want %d", st.ClosureWords, wantWords)
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
}
