// Package run models workflow runs (executions) as defined in Section II of
// the paper: a directed acyclic graph whose nodes are steps — each labelled
// with a unique step id and the module it is an instance of — and whose
// edges are labelled with the data objects passed from the source step to
// the target step. Loops in the specification are unrolled, so one module
// may have many steps. The distinguished INPUT and OUTPUT nodes mark the
// beginning and end of the execution; data on INPUT edges was provided by
// the user (or is the workflow's initial input) and data on OUTPUT edges is
// the run's final output.
//
// Data objects are never overwritten: each data id is produced by at most
// one step, which is what makes provenance well defined.
package run

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/spec"
)

// Errors reported by run construction and validation.
var (
	ErrBadStep       = errors.New("run: invalid step")
	ErrBadFlow       = errors.New("run: invalid flow edge")
	ErrTwoProducers  = errors.New("run: data object produced by two steps")
	ErrCyclicRun     = errors.New("run: execution graph is cyclic")
	ErrDisconnected  = errors.New("run: step not on an input-output path")
	ErrNonConformant = errors.New("run: does not conform to specification")
)

// Step is one execution of a module.
type Step struct {
	ID     string `json:"id"`
	Module string `json:"module"`
}

// Run is a workflow execution.
type Run struct {
	id        string
	specName  string
	steps     map[string]Step
	g         *graph.Graph // step ids + INPUT/OUTPUT
	edgeData  map[[2]string][]string
	producer  map[string]string   // data id -> producing step ("" = external)
	consumers map[string][]string // data id -> consuming steps, sorted
	inputMeta map[string]map[string]string

	// index is the lazily built compact representation (see index.go),
	// cleared by the mutators so a stale snapshot is never handed out.
	indexMu sync.Mutex
	index   *Index
}

// NewRun returns an empty run for the named specification.
func NewRun(id, specName string) *Run {
	r := &Run{
		id:        id,
		specName:  specName,
		steps:     make(map[string]Step),
		g:         graph.New(),
		edgeData:  make(map[[2]string][]string),
		producer:  make(map[string]string),
		consumers: make(map[string][]string),
	}
	r.g.AddNode(spec.Input)
	r.g.AddNode(spec.Output)
	return r
}

// ID returns the run identifier.
func (r *Run) ID() string { return r.id }

// SpecName returns the name of the specification this run executes.
func (r *Run) SpecName() string { return r.specName }

// AddStep registers a step. Step ids must be unique, non-empty and must not
// collide with the reserved INPUT/OUTPUT identifiers.
func (r *Run) AddStep(id, module string) error {
	if id == "" || module == "" {
		return fmt.Errorf("%w: empty id or module", ErrBadStep)
	}
	if id == spec.Input || id == spec.Output {
		return fmt.Errorf("%w: step id %q is reserved", ErrBadStep, id)
	}
	if _, dup := r.steps[id]; dup {
		return fmt.Errorf("%w: duplicate step id %q", ErrBadStep, id)
	}
	r.steps[id] = Step{ID: id, Module: module}
	r.g.AddNode(id)
	r.index = nil
	return nil
}

// AddFlow records that the data objects in data flowed from one node to
// another. from may be a step id or INPUT (user/workflow input); to may be
// a step id or OUTPUT (final output). Every edge must carry at least one
// data object — edges in a run represent actual dataflow, not mere
// precedence. A data object may flow along many edges but must always
// originate from the same producer.
func (r *Run) AddFlow(from, to string, data []string) error {
	if from == spec.Output || to == spec.Input {
		return fmt.Errorf("%w: direction %s -> %s", ErrBadFlow, from, to)
	}
	if from == to {
		return fmt.Errorf("%w: self flow on %s", ErrBadFlow, from)
	}
	if len(data) == 0 {
		return fmt.Errorf("%w: edge %s -> %s carries no data", ErrBadFlow, from, to)
	}
	for _, end := range []string{from, to} {
		if end == spec.Input || end == spec.Output {
			continue
		}
		if _, ok := r.steps[end]; !ok {
			return fmt.Errorf("%w: unknown step %q", ErrBadFlow, end)
		}
	}
	for _, d := range data {
		if d == "" {
			return fmt.Errorf("%w: empty data id on %s -> %s", ErrBadFlow, from, to)
		}
		producer := ""
		if from != spec.Input {
			producer = from
		}
		if prev, seen := r.producer[d]; seen {
			if prev != producer {
				return fmt.Errorf("%w: %q produced by %q and %q", ErrTwoProducers, d, prev, producer)
			}
		} else {
			r.producer[d] = producer
		}
	}
	key := [2]string{from, to}
	existing := r.edgeData[key]
	merged := mergeDataIDs(existing, data)
	r.edgeData[key] = merged
	r.g.AddEdge(from, to)
	if to != spec.Output {
		for _, d := range data {
			r.consumers[d] = insertString(r.consumers[d], to)
		}
	}
	r.index = nil
	return nil
}

// Step returns the step with the given id.
func (r *Run) Step(id string) (Step, bool) {
	s, ok := r.steps[id]
	return s, ok
}

// Steps returns all steps sorted by id (natural order: S2 before S10).
func (r *Run) Steps() []Step {
	out := make([]Step, 0, len(r.steps))
	for _, s := range r.steps {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return lessNatural(out[i].ID, out[j].ID) })
	return out
}

// StepIDs returns all step ids in natural order.
func (r *Run) StepIDs() []string {
	steps := r.Steps()
	out := make([]string, len(steps))
	for i, s := range steps {
		out[i] = s.ID
	}
	return out
}

// NumSteps returns the number of steps.
func (r *Run) NumSteps() int { return len(r.steps) }

// NumEdges returns the number of flow edges (including INPUT/OUTPUT edges).
func (r *Run) NumEdges() int { return r.g.NumEdges() }

// Graph exposes the execution DAG (shared, read-only).
func (r *Run) Graph() *graph.Graph { return r.g }

// DataOn returns the data ids on the edge from -> to, sorted naturally.
func (r *Run) DataOn(from, to string) []string {
	return append([]string(nil), r.edgeData[[2]string{from, to}]...)
}

// Producer returns the producing step of a data object. The second result
// is false if the data id is unknown; a known data id with producer ""
// is external (user or workflow input).
func (r *Run) Producer(d string) (string, bool) {
	p, ok := r.producer[d]
	return p, ok
}

// IsExternal reports whether d is a known data object provided from outside
// the run (it flowed out of INPUT).
func (r *Run) IsExternal(d string) bool {
	p, ok := r.producer[d]
	return ok && p == ""
}

// Consumers returns the steps that read d, sorted.
func (r *Run) Consumers(d string) []string {
	return append([]string(nil), r.consumers[d]...)
}

// InputsOf returns the union of data ids on the incoming edges of a step,
// sorted naturally. For OUTPUT it returns the run's final outputs.
func (r *Run) InputsOf(node string) []string {
	var out []string
	for _, p := range r.g.Predecessors(node) {
		out = mergeDataIDs(out, r.edgeData[[2]string{p, node}])
	}
	return out
}

// OutputsOf returns the union of data ids on the outgoing edges of a step.
// For INPUT it returns all externally provided data.
func (r *Run) OutputsOf(node string) []string {
	var out []string
	for _, s := range r.g.Successors(node) {
		out = mergeDataIDs(out, r.edgeData[[2]string{node, s}])
	}
	return out
}

// FinalOutputs returns the data ids flowing into OUTPUT — the run results.
func (r *Run) FinalOutputs() []string { return r.InputsOf(spec.Output) }

// ExternalInputs returns the data ids flowing out of INPUT.
func (r *Run) ExternalInputs() []string { return r.OutputsOf(spec.Input) }

// AllData returns every data id seen in the run, sorted naturally.
func (r *Run) AllData() []string {
	out := make([]string, 0, len(r.producer))
	for d := range r.producer {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return lessNatural(out[i], out[j]) })
	return out
}

// NumData returns the number of distinct data objects.
func (r *Run) NumData() int { return len(r.producer) }

// HasData reports whether d appears in the run.
func (r *Run) HasData(d string) bool {
	_, ok := r.producer[d]
	return ok
}

// Validate checks the structural requirements of Section II: the execution
// graph is acyclic and every step lies on some path from INPUT to OUTPUT.
// When the compact index is already built (a snapshot load pre-builds it),
// the checks run as integer traversals over the index — same invariants,
// same errors, no string-keyed graph walk.
func (r *Run) Validate() error {
	r.indexMu.Lock()
	ix := r.index
	r.indexMu.Unlock()
	if ix != nil {
		return ix.validateStructure()
	}
	if !r.g.IsAcyclic() {
		return fmt.Errorf("run %q: %w", r.id, ErrCyclicRun)
	}
	fwd := r.g.Reach(spec.Input)
	bwd := r.g.ReachBack(spec.Output)
	for id := range r.steps {
		if !fwd[id] {
			return fmt.Errorf("run %q: step %q unreachable from INPUT: %w", r.id, id, ErrDisconnected)
		}
		if !bwd[id] {
			return fmt.Errorf("run %q: step %q cannot reach OUTPUT: %w", r.id, id, ErrDisconnected)
		}
	}
	return nil
}

// ConformsTo checks the run against a specification: every step's module
// exists in the spec, and every step-to-step flow corresponds to a
// specification edge between the respective modules. INPUT and OUTPUT edges
// are exempt: the paper's model lets users hand data to any step at run
// time, and any step's products may be part of the final output.
func (r *Run) ConformsTo(s *spec.Spec) error {
	if s.Name() != r.specName {
		return fmt.Errorf("run %q executes %q, not %q: %w", r.id, r.specName, s.Name(), ErrNonConformant)
	}
	for _, st := range r.steps {
		if !s.HasModule(st.Module) {
			return fmt.Errorf("run %q: step %q instantiates unknown module %q: %w", r.id, st.ID, st.Module, ErrNonConformant)
		}
	}
	var err error
	r.g.EachEdge(func(from, to string) {
		if err != nil || from == spec.Input || to == spec.Output {
			return
		}
		mf, mt := r.steps[from].Module, r.steps[to].Module
		if !s.Graph().HasEdge(mf, mt) {
			err = fmt.Errorf("run %q: flow %s -> %s has no spec edge %s -> %s: %w",
				r.id, from, to, mf, mt, ErrNonConformant)
		}
	})
	return err
}

// StepsOfModule returns the ids of the steps instantiating module, in
// natural order — several when the module sits in an unrolled loop.
func (r *Run) StepsOfModule(module string) []string {
	var out []string
	for id, s := range r.steps {
		if s.Module == module {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessNatural(out[i], out[j]) })
	return out
}

// String implements fmt.Stringer.
func (r *Run) String() string {
	return fmt.Sprintf("run %q of %q: %d steps, %d edges, %d data objects",
		r.id, r.specName, r.NumSteps(), r.NumEdges(), r.NumData())
}

// mergeDataIDs merges two data-id slices, deduplicating, in natural order.
func mergeDataIDs(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	out := make([]string, 0, len(a)+len(b))
	for _, xs := range [][]string{a, b} {
		for _, x := range xs {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessNatural(out[i], out[j]) })
	return out
}

func insertString(xs []string, v string) []string {
	i := sort.SearchStrings(xs, v)
	if i < len(xs) && xs[i] == v {
		return xs
	}
	xs = append(xs, "")
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

// lessNatural orders strings with trailing integers numerically, so that
// d2 < d10 and S2 < S10, matching the paper's figures.
func lessNatural(a, b string) bool {
	pa, na := splitNatural(a)
	pb, nb := splitNatural(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

func splitNatural(s string) (string, int) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return s, -1
	}
	n, err := strconv.Atoi(s[i:])
	if err != nil {
		return s, -1
	}
	return s[:i], n
}

// DataIDs returns the ids d<from>..d<to> inclusive — a convenience mirroring
// the paper's notation such as {d308, ..., d408}.
func DataIDs(from, to int) []string {
	if to < from {
		return nil
	}
	out := make([]string, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, "d"+strconv.Itoa(i))
	}
	return out
}

// FormatDataSet renders a data set compactly, collapsing numeric runs:
// {d308..d408}. Used by the CLI and tests.
func FormatDataSet(ids []string) string {
	sorted := mergeDataIDs(nil, ids)
	var parts []string
	i := 0
	for i < len(sorted) {
		p, n := splitNatural(sorted[i])
		if n < 0 {
			parts = append(parts, sorted[i])
			i++
			continue
		}
		j := i
		for j+1 < len(sorted) {
			p2, n2 := splitNatural(sorted[j+1])
			if p2 != p || n2 != n+(j+1-i) {
				break
			}
			j++
		}
		if j > i+1 {
			parts = append(parts, fmt.Sprintf("%s..%s", sorted[i], sorted[j]))
		} else {
			for k := i; k <= j; k++ {
				parts = append(parts, sorted[k])
			}
		}
		i = j + 1
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
