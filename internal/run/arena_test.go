package run

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/bitset"
)

// arenaTables derives the arena form of a run from its compact index —
// exactly the tables the v3 snapshot stores.
func arenaTables(r *Run) ArenaTables {
	ix := r.Index()
	steps, data, flows, meta := internedTables(r)
	t := ArenaTables{
		StepIDs:     make([]string, len(steps)),
		StepModules: make([]string, len(steps)),
		DataNames:   data,
		Producer:    make([]int32, ix.NumData()),
		Flows:       flows,
		Meta:        meta,
	}
	for i, st := range steps {
		t.StepIDs[i] = st.ID
		t.StepModules[i] = st.Module
	}
	t.InOff = append(t.InOff, 0)
	t.OutOff = append(t.OutOff, 0)
	for s := 0; s < ix.NumSteps(); s++ {
		t.InData = append(t.InData, ix.InputsOf(int32(s))...)
		t.InOff = append(t.InOff, int32(len(t.InData)))
		t.OutData = append(t.OutData, ix.OutputsOf(int32(s))...)
		t.OutOff = append(t.OutOff, int32(len(t.OutData)))
	}
	t.ConOff = append(t.ConOff, 0)
	t.Finals = bitset.New(ix.NumData())
	for d := 0; d < ix.NumData(); d++ {
		t.Producer[d] = ix.Producer(int32(d))
		t.ConStep = append(t.ConStep, ix.ConsumersOf(int32(d))...)
		t.ConOff = append(t.ConOff, int32(len(t.ConStep)))
		if ix.IsFinal(int32(d)) {
			t.Finals.Add(int32(d))
		}
	}
	return t
}

// TestReconstructArenaEquivalent: the arena path must rebuild a run that is
// element-identical to the original, with an index that matches buildIndex's
// output field for field — the differential anchor for the v3 loader.
func TestReconstructArenaEquivalent(t *testing.T) {
	orig := Figure2()
	if err := orig.AnnotateInput("d1", map[string]string{"who": "joe", "when": "2008-04-07"}); err != nil {
		t.Fatal(err)
	}
	at := arenaTables(orig)
	got, err := ReconstructArena(orig.ID(), orig.SpecName(), at)
	if err != nil {
		t.Fatal(err)
	}
	if d := Compare(orig, got); !d.SameShape() {
		t.Fatalf("arena reconstruction differs: %s", d)
	}
	for _, d := range orig.AllData() {
		po, _ := orig.Producer(d)
		pg, ok := got.Producer(d)
		if !ok || po != pg {
			t.Fatalf("producer of %q: %q vs %q (ok=%v)", d, po, pg, ok)
		}
		if !reflect.DeepEqual(orig.Consumers(d), got.Consumers(d)) {
			t.Fatalf("consumers of %q: %v vs %v", d, orig.Consumers(d), got.Consumers(d))
		}
	}
	if !reflect.DeepEqual(orig.InputMeta("d1"), got.InputMeta("d1")) {
		t.Fatalf("meta differs: %v vs %v", orig.InputMeta("d1"), got.InputMeta("d1"))
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("reconstructed run fails validation: %v", err)
	}

	pre := got.Index()
	ref := buildIndex(got)
	if !reflect.DeepEqual(pre.stepName, ref.stepName) || !reflect.DeepEqual(pre.dataName, ref.dataName) {
		t.Fatal("interning tables differ")
	}
	if !reflect.DeepEqual(pre.producer, ref.producer) {
		t.Fatalf("producer columns differ:\n%v\n%v", pre.producer, ref.producer)
	}
	if !reflect.DeepEqual(pre.inOff, ref.inOff) || !reflect.DeepEqual(pre.inData, ref.inData) ||
		!reflect.DeepEqual(pre.outOff, ref.outOff) || !reflect.DeepEqual(pre.outData, ref.outData) ||
		!reflect.DeepEqual(pre.conOff, ref.conOff) || !reflect.DeepEqual(pre.conStep, ref.conStep) {
		t.Fatal("CSR adjacency differs")
	}
	if !reflect.DeepEqual(pre.finals, ref.finals) {
		t.Fatal("finals bitsets differ")
	}
}

// TestReconstructArenaAdoptsSlices: the assembled index must alias the
// caller's slices (the zero-copy contract), not copies of them.
func TestReconstructArenaAdoptsSlices(t *testing.T) {
	at := arenaTables(Figure2())
	got, err := ReconstructArena("r", "s", at)
	if err != nil {
		t.Fatal(err)
	}
	ix := got.Index()
	if len(at.InData) == 0 || len(at.ConStep) == 0 {
		t.Fatal("fixture too small to test aliasing")
	}
	if &ix.inData[0] != &at.InData[0] || &ix.conStep[0] != &at.ConStep[0] || &ix.producer[0] != &at.Producer[0] {
		t.Fatal("index slices were copied, not adopted")
	}
}

// TestReconstructArenaRejectsCorruption: every invariant violation a forged
// v3 block could carry must come back as an error — never a panic, since the
// slices may alias a memory mapping.
func TestReconstructArenaRejectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*ArenaTables)
		wantErr error
	}{
		{"modules length mismatch", func(a *ArenaTables) { a.StepModules = a.StepModules[:1] }, ErrBadArena},
		{"steps out of order", func(a *ArenaTables) { a.StepIDs[0], a.StepIDs[1] = a.StepIDs[1], a.StepIDs[0] }, ErrBadArena},
		{"empty data id", func(a *ArenaTables) { a.DataNames[0] = "" }, ErrBadArena},
		{"data out of order", func(a *ArenaTables) { a.DataNames[0], a.DataNames[1] = a.DataNames[1], a.DataNames[0] }, ErrBadArena},
		{"producer out of range", func(a *ArenaTables) { a.Producer[0] = int32(len(a.StepIDs)) }, ErrBadArena},
		{"producer disagrees with flows", func(a *ArenaTables) {
			for d := range a.Producer {
				if a.Producer[d] >= 0 {
					a.Producer[d] = -1
					return
				}
			}
		}, ErrBadArena},
		{"CSR offsets truncated", func(a *ArenaTables) { a.InOff = a.InOff[:len(a.InOff)-1] }, ErrBadArena},
		{"CSR offsets decrease", func(a *ArenaTables) { a.InOff[1] = a.InOff[len(a.InOff)-1] + 1 }, ErrBadArena},
		{"CSR value out of range", func(a *ArenaTables) { a.ConStep[0] = int32(len(a.StepIDs)) }, ErrBadArena},
		{"CSR row not ascending", func(a *ArenaTables) { a.InData[0], a.InData[1] = a.InData[1], a.InData[0] }, ErrBadArena},
		{"finals word count wrong", func(a *ArenaTables) { a.Finals = append(a.Finals, 0) }, ErrBadArena},
		{"finals bit beyond range", func(a *ArenaTables) { a.Finals[len(a.Finals)-1] |= 1 << 63 }, ErrBadArena},
		{"flow node out of range", func(a *ArenaTables) { a.Flows[0].From = 99 }, ErrBadFlow},
		{"flow into INPUT", func(a *ArenaTables) { a.Flows[0].To = NodeInput }, ErrBadFlow},
		{"flow data out of range", func(a *ArenaTables) { a.Flows[0].Data[0] = int32(len(a.DataNames)) }, ErrBadFlow},
		{"duplicate edge", func(a *ArenaTables) { a.Flows = append(a.Flows, a.Flows[0]) }, ErrBadArena},
		{"meta index out of range", func(a *ArenaTables) { a.Meta = map[int32]map[string]string{100000: {"k": "v"}} }, ErrBadFlow},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			at := arenaTables(Figure2())
			tc.mutate(&at)
			_, err := ReconstructArena("r", "s", at)
			if err == nil {
				t.Fatal("corruption accepted")
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("error %v, want %v", err, tc.wantErr)
			}
		})
	}
}
