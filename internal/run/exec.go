package run

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/wflog"
)

// The executor simulates one execution of a specification: it unrolls
// loops, instantiates steps, allocates data objects along the edges, and
// emits the event log a real workflow system would have produced. The
// provenance warehouse is loaded *from the log*, exactly as the paper's
// architecture prescribes — the executor stands in for Kepler/Taverna.

// ErrUnsupportedLoops is returned for specifications whose loops overlap
// (share modules); the generator never produces such specifications, and
// the paper's collected workflows (sequence/loop/parallel patterns) do not
// contain them either.
var ErrUnsupportedLoops = errors.New("run: overlapping loops unsupported")

// Config controls the executor. Ranges are inclusive [min, max]; a zero
// range selects the documented default.
type Config struct {
	// RunID names the produced run.
	RunID string
	// Seed makes the execution deterministic.
	Seed int64
	// UserInput is the number of data objects provided on each INPUT edge
	// (Table II's "user input" parameter). Default [1, 3].
	UserInput [2]int
	// DataPerStep is the number of data objects each step produces
	// (Table II's "data prod. by step"). Default [1, 2].
	DataPerStep [2]int
	// LoopIter is the number of iterations executed per loop (Table II's
	// "loop-iteration"). Default [1, 2].
	LoopIter [2]int
	// MaxSteps caps the unrolled size; loop iterations are reduced to fit.
	// Default 10000.
	MaxSteps int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.UserInput == [2]int{} {
		out.UserInput = [2]int{1, 3}
	}
	if out.DataPerStep == [2]int{} {
		out.DataPerStep = [2]int{1, 2}
	}
	if out.LoopIter == [2]int{} {
		out.LoopIter = [2]int{1, 2}
	}
	if out.MaxSteps == 0 {
		out.MaxSteps = 10000
	}
	if out.RunID == "" {
		out.RunID = "run"
	}
	return out
}

func sample(rng *rand.Rand, r [2]int) int {
	lo, hi := r[0], r[1]
	if hi < lo {
		lo, hi = hi, lo
	}
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// loop describes one unrollable loop: the back edge (tail -> head) and the
// set of body modules.
type loop struct {
	head, tail string
	body       map[string]bool
	iters      int
}

// Execute simulates one run of s and returns the run together with the
// event log it generated. The specification must be valid; its loops must
// be non-overlapping.
func Execute(s *spec.Spec, cfg Config) (*Run, []wflog.Event, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))

	g := s.Graph()
	backEdges := g.BackEdges()
	skeleton := g.Clone()
	for _, e := range backEdges {
		skeleton.RemoveEdge(e.From, e.To)
	}
	if !skeleton.IsAcyclic() {
		// BackEdges guarantees acyclicity; this is defensive.
		return nil, nil, fmt.Errorf("run: skeleton still cyclic: %w", ErrUnsupportedLoops)
	}

	loops, err := identifyLoops(skeleton, backEdges)
	if err != nil {
		return nil, nil, err
	}
	// Sample iteration counts, then clamp to MaxSteps.
	base := s.NumModules()
	for _, l := range loops {
		l.iters = sample(rng, c.LoopIter)
	}
	clampIterations(loops, base, c.MaxSteps)

	unrolled, instanceModule, err := unroll(skeleton, backEdges, loops)
	if err != nil {
		return nil, nil, err
	}

	order, err := unrolled.TopoSort()
	if err != nil {
		return nil, nil, fmt.Errorf("run: unrolled graph cyclic: %w", err)
	}

	// Assign step ids S1.. in topological order and build the run.
	r := NewRun(c.RunID, s.Name())
	stepID := make(map[string]string, len(order))
	n := 0
	for _, inst := range order {
		if inst == spec.Input || inst == spec.Output {
			continue
		}
		n++
		id := "S" + strconv.Itoa(n)
		stepID[inst] = id
		if err := r.AddStep(id, instanceModule[inst]); err != nil {
			return nil, nil, err
		}
	}

	// Allocate data along edges in topological order. Each step produces
	// `dataPerStep` objects (at least one per outgoing edge) and each INPUT
	// edge carries `userInput` fresh objects.
	next := 0
	fresh := func() string { next++; return "d" + strconv.Itoa(next) }
	lb := wflog.NewBuilder()
	for _, inst := range order {
		if inst == spec.Output {
			continue
		}
		succs := unrolled.Successors(inst)
		if inst == spec.Input {
			for _, sc := range succs {
				count := sample(rng, c.UserInput)
				data := make([]string, count)
				for i := range data {
					data[i] = fresh()
				}
				if err := r.AddFlow(spec.Input, stepID[sc], data); err != nil {
					return nil, nil, err
				}
			}
			continue
		}
		id := stepID[inst]
		lb.Start(id, instanceModule[inst])
		lb.Reads(id, r.InputsOf(id)...)
		if len(succs) == 0 {
			continue
		}
		count := sample(rng, c.DataPerStep)
		if count < len(succs) {
			count = len(succs)
		}
		produced := make([]string, count)
		for i := range produced {
			produced[i] = fresh()
		}
		lb.Writes(id, produced...)
		// Round-robin the products over the outgoing edges so every edge
		// carries at least one object.
		perEdge := make([][]string, len(succs))
		for i, d := range produced {
			e := i % len(succs)
			perEdge[e] = append(perEdge[e], d)
		}
		for i, sc := range succs {
			target := stepID[sc]
			if sc == spec.Output {
				target = spec.Output
			}
			if err := r.AddFlow(id, target, perEdge[i]); err != nil {
				return nil, nil, err
			}
		}
	}
	if err := r.Validate(); err != nil {
		return nil, nil, err
	}
	return r, lb.Events(), nil
}

// identifyLoops maps each back edge to its body: the skeleton nodes on
// paths head -> tail, plus head and tail themselves. Overlapping bodies are
// rejected.
func identifyLoops(skeleton *graph.Graph, backEdges []graph.Edge) ([]*loop, error) {
	var loops []*loop
	owned := make(map[string]int) // module -> loop index
	for _, be := range backEdges {
		l := &loop{head: be.To, tail: be.From, body: map[string]bool{be.To: true, be.From: true}}
		if be.To != be.From {
			fwd := skeleton.Reach(be.To)
			bwd := skeleton.ReachBack(be.From)
			for n := range fwd {
				if bwd[n] {
					l.body[n] = true
				}
			}
		}
		idx := len(loops)
		for m := range l.body {
			if prev, taken := owned[m]; taken && prev != idx {
				return nil, fmt.Errorf("run: module %q in two loops: %w", m, ErrUnsupportedLoops)
			}
			owned[m] = idx
		}
		loops = append(loops, l)
	}
	return loops, nil
}

// clampIterations shrinks loop iteration counts until the unrolled size
// fits maxSteps. base is the module count outside any extra iterations.
func clampIterations(loops []*loop, base, maxSteps int) {
	total := func() int {
		t := base
		for _, l := range loops {
			t += (l.iters - 1) * len(l.body)
		}
		return t
	}
	for total() > maxSteps {
		// Reduce the loop contributing the most instances.
		var worst *loop
		for _, l := range loops {
			if l.iters > 1 && (worst == nil || (l.iters-1)*len(l.body) > (worst.iters-1)*len(worst.body)) {
				worst = l
			}
		}
		if worst == nil {
			break
		}
		worst.iters--
	}
}

// unroll builds the acyclic instance graph. Instances are named
// "<module>#<iteration>", iteration 0 for modules outside every loop.
//
// Loop semantics match Figure 2 of the paper: iterations 1..k-1 execute the
// full body and continue through the back edge; the final iteration k
// executes only the body modules from which a loop exit is reachable over
// intra-body edges, and only the final iteration feeds the exit edges. In
// the phylogenomics loop M3 -> M4 -> M5 -> M3 with two iterations this
// yields exactly the paper's steps: M3, M4, M5, M3, M4 — the rectification
// step M5 does not run in the iteration that exits to M7.
func unroll(skeleton *graph.Graph, backEdges []graph.Edge, loops []*loop) (*graph.Graph, map[string]string, error) {
	loopOf := make(map[string]*loop)
	for _, l := range loops {
		for m := range l.body {
			loopOf[m] = l
		}
	}
	// finalBody per loop: modules that reach an exit node (a body module
	// with an edge out of the body, including to OUTPUT) over intra-body
	// skeleton edges.
	finalBody := make(map[*loop]map[string]bool, len(loops))
	for _, l := range loops {
		intra := skeleton.InducedSubgraph(l.body)
		fb := make(map[string]bool)
		for m := range l.body {
			isExit := false
			for _, sc := range skeleton.Successors(m) {
				if !l.body[sc] {
					isExit = true
					break
				}
			}
			if isExit {
				fb[m] = true
				for n := range intra.ReachBack(m) {
					fb[n] = true
				}
			}
		}
		if !fb[l.head] {
			return nil, nil, fmt.Errorf("run: loop head %q cannot reach a loop exit: %w", l.head, ErrUnsupportedLoops)
		}
		finalBody[l] = fb
	}

	inst := func(module string, iter int) string {
		return module + "#" + strconv.Itoa(iter)
	}
	exists := func(module string, iter int) bool {
		l := loopOf[module]
		if l == nil {
			return iter == 0
		}
		if iter < 1 || iter > l.iters {
			return false
		}
		return iter < l.iters || finalBody[l][module]
	}
	// firstInst: where external edges enter (iteration 1 when it exists,
	// else nowhere — the module never runs in a 1-iteration execution).
	firstInst := func(module string) (string, bool) {
		if l := loopOf[module]; l != nil {
			if !exists(module, 1) {
				return "", false
			}
			return inst(module, 1), true
		}
		return inst(module, 0), true
	}
	lastInst := func(module string) string {
		if l := loopOf[module]; l != nil {
			return inst(module, l.iters) // exit nodes are always in finalBody
		}
		return inst(module, 0)
	}

	u := graph.New()
	modules := make(map[string]string)
	u.AddNode(spec.Input)
	u.AddNode(spec.Output)
	for _, m := range skeleton.Nodes() {
		if m == spec.Input || m == spec.Output {
			continue
		}
		if l := loopOf[m]; l != nil {
			for i := 1; i <= l.iters; i++ {
				if exists(m, i) {
					u.AddNode(inst(m, i))
					modules[inst(m, i)] = m
				}
			}
		} else {
			u.AddNode(inst(m, 0))
			modules[inst(m, 0)] = m
		}
	}
	skeleton.EachEdge(func(from, to string) {
		switch {
		case from == spec.Input && to == spec.Output:
			u.AddEdge(from, to)
		case from == spec.Input:
			if fi, ok := firstInst(to); ok {
				u.AddEdge(spec.Input, fi)
			}
		case to == spec.Output:
			u.AddEdge(lastInst(from), spec.Output)
		default:
			lf, lt := loopOf[from], loopOf[to]
			switch {
			case lf != nil && lf == lt:
				// Intra-body edge: replicate wherever both ends exist.
				for i := 1; i <= lf.iters; i++ {
					if exists(from, i) && exists(to, i) {
						u.AddEdge(inst(from, i), inst(to, i))
					}
				}
			default:
				// Leaving a body uses the last iteration; entering one uses
				// the first. Outside-outside uses iteration 0 on both ends.
				if fi, ok := firstInst(to); ok {
					u.AddEdge(lastInst(from), fi)
				}
			}
		}
	})
	// Back edges chain consecutive iterations: tail#i -> head#(i+1).
	for _, be := range backEdges {
		l := loopOf[be.To]
		if l == nil {
			return nil, nil, fmt.Errorf("run: back edge %v without loop: %w", be, ErrUnsupportedLoops)
		}
		for i := 1; i < l.iters; i++ {
			if exists(be.From, i) && exists(be.To, i+1) {
				u.AddEdge(inst(be.From, i), inst(be.To, i+1))
			}
		}
	}
	return u, modules, nil
}

// SizeEstimate predicts the unrolled step count of s under the given
// iteration count per loop, without executing. Used by the workload
// generator to hit Table II's size targets.
func SizeEstimate(s *spec.Spec, itersPerLoop int) int {
	g := s.Graph()
	backEdges := g.BackEdges()
	skeleton := g.Clone()
	for _, e := range backEdges {
		skeleton.RemoveEdge(e.From, e.To)
	}
	loops, err := identifyLoops(skeleton, backEdges)
	if err != nil {
		return s.NumModules()
	}
	total := s.NumModules()
	for _, l := range loops {
		total += (itersPerLoop - 1) * len(l.body)
	}
	return total
}
