package run

import (
	"strings"
	"testing"

	"repro/internal/spec"
)

func TestCompareIdenticalSeeds(t *testing.T) {
	s := spec.Phylogenomics()
	a, _, err := Execute(s, Config{RunID: "a", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Execute(s, Config{RunID: "b", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	d := Compare(a, b)
	if !d.SameShape() {
		t.Fatalf("same-seed runs differ: %s", d)
	}
	if !strings.Contains(d.String(), "same shape") {
		t.Fatalf("summary missing same-shape: %s", d)
	}
}

func TestCompareDifferentIterations(t *testing.T) {
	s := spec.Phylogenomics()
	a, _, err := Execute(s, Config{RunID: "a", Seed: 1, LoopIter: [2]int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Execute(s, Config{RunID: "b", Seed: 1, LoopIter: [2]int{5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	d := Compare(a, b)
	if d.SameShape() {
		t.Fatal("different iteration counts reported as same shape")
	}
	// The loop modules M3, M4 and M5 must show deltas; the rest must not.
	want := map[string][2]int{"M3": {2, 5}, "M4": {2, 5}, "M5": {1, 4}}
	if len(d.ModuleDeltas) != len(want) {
		t.Fatalf("deltas = %v", d.ModuleDeltas)
	}
	for _, md := range d.ModuleDeltas {
		w, ok := want[md.Module]
		if !ok || md.CountA != w[0] || md.CountB != w[1] {
			t.Fatalf("delta %v, want %v", md, w)
		}
	}
	if !strings.Contains(d.String(), "M5 executed 1x vs 4x") {
		t.Fatalf("summary: %s", d)
	}
}

func TestCompareSpecMismatch(t *testing.T) {
	a := Figure2()
	other := spec.New("other")
	other.MustAddModule(spec.Module{Name: "X"})
	other.MustAddEdge(spec.Input, "X")
	other.MustAddEdge("X", spec.Output)
	b, _, err := Execute(other, Config{RunID: "b", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := Compare(a, b)
	if !d.SpecMismatch || d.SameShape() {
		t.Fatalf("spec mismatch not flagged: %s", d)
	}
	if !strings.Contains(d.String(), "DIFFERENT SPECIFICATIONS") {
		t.Fatalf("summary: %s", d)
	}
}
