package run

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/spec"
)

// internedTables derives the interned form of a run — natural-order step and
// data tables plus code/index flows — exactly as the binary snapshot writer
// does.
func internedTables(r *Run) (steps []Step, data []string, flows []InternedFlow, meta map[int32]map[string]string) {
	steps = r.Steps()
	data = r.AllData()
	code := map[string]int32{spec.Input: NodeInput, spec.Output: NodeOutput}
	for i, st := range steps {
		code[st.ID] = int32(NodeStep0 + i)
	}
	idx := make(map[string]int32, len(data))
	for i, d := range data {
		idx[d] = int32(i)
	}
	for _, e := range r.Graph().Edges() {
		var ds []int32
		for _, d := range r.DataOn(e.From, e.To) { // natural order = ascending indexes
			ds = append(ds, idx[d])
		}
		flows = append(flows, InternedFlow{From: code[e.From], To: code[e.To], Data: ds})
	}
	for _, d := range r.AnnotatedInputs() {
		if meta == nil {
			meta = make(map[int32]map[string]string)
		}
		meta[idx[d]] = r.InputMeta(d)
	}
	return steps, data, flows, meta
}

// TestReconstructInternedEquivalent: the interned fast path must rebuild a
// run that is element-identical to the original — same steps, flows, data,
// producers, consumers and metadata — and whose pre-built index matches the
// index the string-world buildIndex derives, field for field.
func TestReconstructInternedEquivalent(t *testing.T) {
	orig := Figure2()
	if err := orig.AnnotateInput("d1", map[string]string{"who": "joe", "when": "2008-04-07"}); err != nil {
		t.Fatal(err)
	}
	steps, data, flows, meta := internedTables(orig)
	got, err := ReconstructInterned(orig.ID(), orig.SpecName(), steps, data, flows, meta)
	if err != nil {
		t.Fatal(err)
	}
	if d := Compare(orig, got); !d.SameShape() {
		t.Fatalf("interned reconstruction differs: %s", d)
	}
	for _, d := range orig.AllData() {
		po, _ := orig.Producer(d)
		pg, ok := got.Producer(d)
		if !ok || po != pg {
			t.Fatalf("producer of %q: %q vs %q (ok=%v)", d, po, pg, ok)
		}
		if !reflect.DeepEqual(orig.Consumers(d), got.Consumers(d)) {
			t.Fatalf("consumers of %q: %v vs %v", d, orig.Consumers(d), got.Consumers(d))
		}
	}
	if !reflect.DeepEqual(orig.InputMeta("d1"), got.InputMeta("d1")) {
		t.Fatalf("meta differs: %v vs %v", orig.InputMeta("d1"), got.InputMeta("d1"))
	}

	// The pre-built index must match buildIndex's output exactly. Build the
	// reference from the reconstructed run so both cover identical contents.
	pre := got.Index()
	ref := buildIndex(got)
	if !reflect.DeepEqual(pre.stepName, ref.stepName) || !reflect.DeepEqual(pre.dataName, ref.dataName) {
		t.Fatal("interning tables differ")
	}
	if !reflect.DeepEqual(pre.producer, ref.producer) {
		t.Fatalf("producer columns differ:\n%v\n%v", pre.producer, ref.producer)
	}
	for _, pair := range [][2][]int32{
		{pre.inOff, ref.inOff}, {pre.inData, ref.inData},
		{pre.outOff, ref.outOff}, {pre.outData, ref.outData},
		{pre.conOff, ref.conOff}, {pre.conStep, ref.conStep},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Fatalf("CSR relation differs:\n%v\n%v", pair[0], pair[1])
		}
	}
	for i := 0; i < len(data); i++ {
		if pre.IsFinal(int32(i)) != ref.IsFinal(int32(i)) {
			t.Fatalf("finals differ at %d", i)
		}
	}
}

// TestReconstructInternedFallback: tables that violate the ordering
// assumptions must still reconstruct correctly (through the normalizing
// string path), and structural violations must fail with the same errors
// the incremental builders report.
func TestReconstructInternedFallback(t *testing.T) {
	orig := Figure2()
	steps, data, flows, _ := internedTables(orig)

	// Swap two data table entries: natural order broken, content identical.
	data2 := append([]string(nil), data...)
	data2[0], data2[1] = data2[1], data2[0]
	flows2 := make([]InternedFlow, len(flows))
	remap := func(di int32) int32 {
		switch di {
		case 0:
			return 1
		case 1:
			return 0
		}
		return di
	}
	for i, f := range flows {
		ds := make([]int32, len(f.Data))
		for j, di := range f.Data {
			ds[j] = remap(di)
		}
		flows2[i] = InternedFlow{From: f.From, To: f.To, Data: ds}
	}
	got, err := ReconstructInterned(orig.ID(), orig.SpecName(), steps, data2, flows2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := Compare(orig, got); !d.SameShape() {
		t.Fatalf("fallback reconstruction differs: %s", d)
	}

	// Structural violations surface the builder errors on both paths.
	for _, tc := range []struct {
		name  string
		mut   func(fs []InternedFlow) []InternedFlow
		errIs error
	}{
		{"self flow", func(fs []InternedFlow) []InternedFlow {
			return append(fs, InternedFlow{From: NodeStep0, To: NodeStep0, Data: []int32{0}})
		}, ErrBadFlow},
		{"empty data", func(fs []InternedFlow) []InternedFlow {
			return append(fs, InternedFlow{From: NodeStep0, To: NodeOutput})
		}, ErrBadFlow},
		{"bad code", func(fs []InternedFlow) []InternedFlow {
			return append(fs, InternedFlow{From: 99, To: NodeOutput, Data: []int32{0}})
		}, ErrBadFlow},
		{"two producers", func(fs []InternedFlow) []InternedFlow {
			d := fs[len(fs)-1].Data[0] // produced by a step; claim INPUT produced it too
			return append(fs, InternedFlow{From: NodeInput, To: fs[0].To, Data: []int32{d}})
		}, ErrTwoProducers},
	} {
		fs := tc.mut(append([]InternedFlow(nil), flows...))
		if _, err := ReconstructInterned(orig.ID(), orig.SpecName(), steps, data, fs, nil); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		} else if !errors.Is(err, tc.errIs) {
			t.Fatalf("%s: error %v, want %v", tc.name, err, tc.errIs)
		}
	}
}
