package run

import (
	"fmt"
	"sort"

	"repro/internal/spec"
	"repro/internal/wflog"
)

// FromLog reconstructs a run from an event log, the operation that makes
// ZOOM agnostic to the host workflow system: "our approach only requires a
// definition of the workflow, and information about the objects consumed
// and produced by steps in a workflow run".
//
// Reconstruction rules:
//   - every start event introduces a step;
//   - a read of a data object written by step p induces the flow p -> reader;
//   - a read of a data object nobody wrote is external input (INPUT -> reader);
//   - data written but never read is final output (writer -> OUTPUT).
func FromLog(runID, specName string, events []wflog.Event) (*Run, error) {
	if err := wflog.ValidateSequence(events); err != nil {
		return nil, err
	}
	r := NewRun(runID, specName)
	writer := make(map[string]string)     // data -> producing step
	readsOf := make(map[string][]string)  // step -> data read (in log order)
	writesOf := make(map[string][]string) // step -> data written
	read := make(map[string]bool)         // data ever read
	var stepOrder []string
	for _, e := range events {
		switch e.Kind {
		case wflog.KindStart:
			if err := r.AddStep(e.Step, e.Module); err != nil {
				return nil, err
			}
			stepOrder = append(stepOrder, e.Step)
		case wflog.KindRead:
			readsOf[e.Step] = append(readsOf[e.Step], e.Data)
			read[e.Data] = true
		case wflog.KindWrite:
			if prev, dup := writer[e.Data]; dup {
				return nil, fmt.Errorf("%w: %q written by %q and %q", ErrTwoProducers, e.Data, prev, e.Step)
			}
			writer[e.Data] = e.Step
			writesOf[e.Step] = append(writesOf[e.Step], e.Data)
		}
	}
	// Group flows per (source, target) pair for compact edges.
	for _, step := range stepOrder {
		bySource := make(map[string][]string)
		for _, d := range readsOf[step] {
			src, ok := writer[d]
			if !ok {
				src = spec.Input
			}
			bySource[src] = append(bySource[src], d)
		}
		srcs := make([]string, 0, len(bySource))
		for src := range bySource {
			srcs = append(srcs, src)
		}
		sort.Strings(srcs)
		for _, src := range srcs {
			if err := r.AddFlow(src, step, bySource[src]); err != nil {
				return nil, err
			}
		}
	}
	// Unread writes become final outputs.
	for _, step := range stepOrder {
		var finals []string
		for _, d := range writesOf[step] {
			if !read[d] {
				finals = append(finals, d)
			}
		}
		if len(finals) > 0 {
			if err := r.AddFlow(step, spec.Output, finals); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// ToLog renders a run as the event log that would have produced it: steps
// in topological order, each starting, reading its inputs, and writing its
// outputs. ToLog and FromLog are inverse up to final-output placement, which
// the round-trip tests pin down.
func (r *Run) ToLog() ([]wflog.Event, error) {
	order, err := r.g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("run %q: %w", r.id, err)
	}
	b := wflog.NewBuilder()
	for _, node := range order {
		st, ok := r.steps[node]
		if !ok {
			continue // INPUT/OUTPUT
		}
		b.Start(st.ID, st.Module)
		b.Reads(st.ID, r.InputsOf(st.ID)...)
		b.Writes(st.ID, r.OutputsOf(st.ID)...)
	}
	return b.Events(), nil
}
