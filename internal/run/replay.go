package run

import (
	"fmt"

	"repro/internal/wflog"
)

// FromLog reconstructs a run from an event log, the operation that makes
// ZOOM agnostic to the host workflow system: "our approach only requires a
// definition of the workflow, and information about the objects consumed
// and produced by steps in a workflow run".
//
// Reconstruction rules:
//   - every start event introduces a step;
//   - a read of a data object written by step p induces the flow p -> reader;
//   - a read of a data object nobody wrote is external input (INPUT -> reader);
//   - data written but never read is final output (writer -> OUTPUT).
// FromLog is the batch form of LogLoader (see loader.go), which streams the
// same reconstruction event by event.
func FromLog(runID, specName string, events []wflog.Event) (*Run, error) {
	l := NewLogLoader(runID, specName)
	for _, e := range events {
		if err := l.Add(e); err != nil {
			return nil, err
		}
	}
	return l.Finish()
}

// ToLog renders a run as the event log that would have produced it: steps
// in topological order, each starting, reading its inputs, and writing its
// outputs. ToLog and FromLog are inverse up to final-output placement, which
// the round-trip tests pin down.
func (r *Run) ToLog() ([]wflog.Event, error) {
	order, err := r.g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("run %q: %w", r.id, err)
	}
	b := wflog.NewBuilder()
	for _, node := range order {
		st, ok := r.steps[node]
		if !ok {
			continue // INPUT/OUTPUT
		}
		b.Start(st.ID, st.Module)
		b.Reads(st.ID, r.InputsOf(st.ID)...)
		b.Writes(st.ID, r.OutputsOf(st.ID)...)
	}
	return b.Events(), nil
}
