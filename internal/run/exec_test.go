package run

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/spec"
	"repro/internal/wflog"
)

func TestExecutePhylogenomics(t *testing.T) {
	s := spec.Phylogenomics()
	r, events, err := Execute(s, Config{RunID: "t1", Seed: 7, LoopIter: [2]int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := r.ConformsTo(s); err != nil {
		t.Fatal(err)
	}
	if err := wflog.ValidateSequence(events); err != nil {
		t.Fatal(err)
	}
	// Two iterations: M3 and M4 run twice, M5 once (the final iteration
	// exits through M4, exactly like Figure 2).
	if got := len(r.StepsOfModule("M3")); got != 2 {
		t.Fatalf("M3 ran %d times, want 2", got)
	}
	if got := len(r.StepsOfModule("M4")); got != 2 {
		t.Fatalf("M4 ran %d times, want 2", got)
	}
	if got := len(r.StepsOfModule("M5")); got != 1 {
		t.Fatalf("M5 ran %d times, want 1", got)
	}
	// 10 steps total, same as Figure 2.
	if r.NumSteps() != 10 {
		t.Fatalf("NumSteps = %d, want 10", r.NumSteps())
	}
	if len(r.FinalOutputs()) == 0 {
		t.Fatal("no final outputs")
	}
}

func TestExecuteSingleIteration(t *testing.T) {
	s := spec.Phylogenomics()
	r, _, err := Execute(s, Config{Seed: 1, LoopIter: [2]int{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// One iteration: M5 (no path to an exit inside the body) never runs.
	if got := len(r.StepsOfModule("M5")); got != 0 {
		t.Fatalf("M5 ran %d times, want 0 in a single-iteration run", got)
	}
	if got := len(r.StepsOfModule("M3")); got != 1 {
		t.Fatalf("M3 ran %d times, want 1", got)
	}
	if r.NumSteps() != 7 {
		t.Fatalf("NumSteps = %d, want 7", r.NumSteps())
	}
}

func TestExecuteDeterministic(t *testing.T) {
	s := spec.Phylogenomics()
	a, ea, err := Execute(s, Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, eb, err := Execute(s, Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ea, eb) {
		t.Fatal("same seed produced different logs")
	}
	if a.NumSteps() != b.NumSteps() || a.NumData() != b.NumData() {
		t.Fatal("same seed produced different runs")
	}
	c, _, err := Execute(s, Config{Seed: 100, LoopIter: [2]int{1, 9}, UserInput: [2]int{1, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumData() == a.NumData() && c.NumSteps() == a.NumSteps() {
		t.Log("different seed produced identical-size run (possible but unlikely)")
	}
}

func TestExecuteLoopScaling(t *testing.T) {
	s := spec.Phylogenomics()
	r, _, err := Execute(s, Config{Seed: 3, LoopIter: [2]int{10, 10}})
	if err != nil {
		t.Fatal(err)
	}
	// 10 iterations: M3, M4 ten times; M5 nine times (not in final).
	if got := len(r.StepsOfModule("M3")); got != 10 {
		t.Fatalf("M3 ran %d times, want 10", got)
	}
	if got := len(r.StepsOfModule("M5")); got != 9 {
		t.Fatalf("M5 ran %d times, want 9", got)
	}
	if err := r.ConformsTo(s); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteMaxStepsClamp(t *testing.T) {
	s := spec.Phylogenomics()
	r, _, err := Execute(s, Config{Seed: 3, LoopIter: [2]int{1000, 1000}, MaxSteps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumSteps() > 60 { // small slack: clamp is approximate
		t.Fatalf("NumSteps = %d exceeds clamp", r.NumSteps())
	}
}

func TestExecuteSelfLoop(t *testing.T) {
	s := spec.New("selfloop")
	s.MustAddModule(spec.Module{Name: "A"})
	s.MustAddModule(spec.Module{Name: "B"})
	s.MustAddEdge(spec.Input, "A")
	s.MustAddEdge("A", "A")
	s.MustAddEdge("A", "B")
	s.MustAddEdge("B", spec.Output)
	r, _, err := Execute(s, Config{Seed: 5, LoopIter: [2]int{3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.StepsOfModule("A")); got != 3 {
		t.Fatalf("A ran %d times, want 3", got)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := r.ConformsTo(s); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteRejectsOverlappingLoops(t *testing.T) {
	s := spec.New("overlap")
	for _, m := range []string{"A", "B", "C"} {
		s.MustAddModule(spec.Module{Name: m})
	}
	s.MustAddEdge(spec.Input, "A")
	s.MustAddEdge("A", "B")
	s.MustAddEdge("B", "A") // loop 1 over {A, B}
	s.MustAddEdge("B", "C")
	s.MustAddEdge("C", "B") // loop 2 over {B, C}: shares B
	s.MustAddEdge("C", spec.Output)
	_, _, err := Execute(s, Config{Seed: 1, LoopIter: [2]int{2, 2}})
	if !errors.Is(err, ErrUnsupportedLoops) {
		t.Fatalf("err = %v, want ErrUnsupportedLoops", err)
	}
}

func TestExecuteInvalidSpecRejected(t *testing.T) {
	s := spec.New("bad")
	s.MustAddModule(spec.Module{Name: "A"})
	s.MustAddEdge(spec.Input, "A")
	if _, _, err := Execute(s, Config{Seed: 1}); err == nil {
		t.Fatal("invalid spec executed")
	}
}

func TestExecuteEveryEdgeCarriesData(t *testing.T) {
	s := spec.Phylogenomics()
	r, _, err := Execute(s, Config{Seed: 11, LoopIter: [2]int{3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	r.Graph().EachEdge(func(from, to string) {
		if len(r.DataOn(from, to)) == 0 {
			t.Errorf("edge %s -> %s carries no data", from, to)
		}
	})
}

func TestExecuteLogMatchesRun(t *testing.T) {
	// Reconstructing the run from the emitted log must reproduce it.
	s := spec.Phylogenomics()
	r, events, err := Execute(s, Config{RunID: "orig", Seed: 21, LoopIter: [2]int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromLog("orig", s.Name(), events)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsEquivalent(t, r, back)
}

func TestSizeEstimate(t *testing.T) {
	s := spec.Phylogenomics()
	if got := SizeEstimate(s, 1); got != 8 {
		t.Fatalf("SizeEstimate(1) = %d, want 8", got)
	}
	if got := SizeEstimate(s, 5); got != 8+4*3 {
		t.Fatalf("SizeEstimate(5) = %d, want 20", got)
	}
}

// assertRunsEquivalent compares two runs on everything provenance cares
// about: steps, producers, and per-step input/output sets.
func assertRunsEquivalent(t *testing.T, a, b *Run) {
	t.Helper()
	if !reflect.DeepEqual(a.Steps(), b.Steps()) {
		t.Fatalf("steps differ:\n%v\n%v", a.Steps(), b.Steps())
	}
	if !reflect.DeepEqual(a.AllData(), b.AllData()) {
		t.Fatalf("data differ: %d vs %d objects", a.NumData(), b.NumData())
	}
	for _, d := range a.AllData() {
		pa, _ := a.Producer(d)
		pb, _ := b.Producer(d)
		if pa != pb {
			t.Fatalf("producer of %s: %q vs %q", d, pa, pb)
		}
	}
	for _, st := range a.Steps() {
		if !reflect.DeepEqual(a.InputsOf(st.ID), b.InputsOf(st.ID)) {
			t.Fatalf("inputs of %s differ: %v vs %v", st.ID, a.InputsOf(st.ID), b.InputsOf(st.ID))
		}
		if !reflect.DeepEqual(a.OutputsOf(st.ID), b.OutputsOf(st.ID)) {
			t.Fatalf("outputs of %s differ", st.ID)
		}
	}
}
