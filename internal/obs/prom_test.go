package obs

import (
	"bufio"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promMetricName is the Prometheus metric-name grammar.
var promMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promSample is one parsed exposition line: name{labels} value.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition is a small parser for the text format the test uses to
// check WritePrometheus output round-trips: it validates line syntax as it
// goes and returns the TYPE declarations and samples in order.
func parseExposition(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = make(map[string]string)
	labelRe := regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"$`)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "TYPE" {
				t.Fatalf("bad comment line %q", line)
			}
			if !promMetricName.MatchString(f[2]) {
				t.Fatalf("TYPE declares invalid metric name %q", f[2])
			}
			if _, dup := types[f[2]]; dup {
				t.Fatalf("family %s declared twice", f[2])
			}
			types[f[2]] = f[3]
			continue
		}
		// name{label="v",...} value  |  name value
		rest := line
		var s promSample
		s.labels = make(map[string]string)
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			j := strings.IndexByte(rest, '}')
			if j < i {
				t.Fatalf("unbalanced braces in %q", line)
			}
			s.name = rest[:i]
			for _, pair := range strings.Split(rest[i+1:j], ",") {
				m := labelRe.FindStringSubmatch(pair)
				if m == nil {
					t.Fatalf("bad label pair %q in %q", pair, line)
				}
				s.labels[m[1]] = m[2]
			}
			rest = strings.TrimSpace(rest[j+1:])
		} else {
			f := strings.Fields(rest)
			if len(f) != 2 {
				t.Fatalf("bad sample line %q", line)
			}
			s.name, rest = f[0], f[1]
		}
		if !promMetricName.MatchString(s.name) {
			t.Fatalf("invalid metric name %q in %q", s.name, line)
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			if rest != "+Inf" {
				t.Fatalf("bad value %q in %q", rest, line)
			}
			v = math.Inf(1)
		}
		s.value = v
		samples = append(samples, s)
	}
	return types, samples
}

// family strips the _bucket/_sum/_count suffix a histogram sample carries.
func family(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// TestWritePrometheusRoundTrip renders a registry exercised like the real
// system (outcome-suffixed histograms, dotted names, counters and gauges)
// and re-parses the exposition text, checking the invariants a Prometheus
// scraper relies on: valid names, one TYPE per family, outcome labels,
// and per-series cumulative bucket counts that rise monotonically with le
// and end at _count.
func TestWritePrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("query.deep_total").Add(7)
	reg.Counter("query.errors").Add(2)
	reg.Gauge("server.ready").Set(1)
	for _, outcome := range []string{"hit", "miss", "shared-wait"} {
		h := reg.Histogram("query.deep_total_ns." + outcome)
		for i := int64(1); i <= 100; i++ {
			h.Observe(i * i * 17)
		}
	}
	lk := reg.Histogram("query.lookup_ns")
	lk.Observe(5)
	lk.Observe(5000)

	var b strings.Builder
	WritePrometheus(&b, reg.Snapshot(), "zoom")
	text := b.String()
	types, samples := parseExposition(t, text)

	// Expected families, all namespaced, outcome folded out of the name.
	want := map[string]string{
		"zoom_query_deep_total":    "counter",
		"zoom_query_errors":        "counter",
		"zoom_server_ready":        "gauge",
		"zoom_query_deep_total_ns": "histogram",
		"zoom_query_lookup_ns":     "histogram",
	}
	for fam, typ := range want {
		if types[fam] != typ {
			t.Fatalf("family %s: TYPE %q, want %q\n%s", fam, types[fam], typ, text)
		}
	}
	for fam := range types {
		if _, ok := want[fam]; !ok {
			t.Fatalf("unexpected family %s", fam)
		}
	}

	// Every sample must belong to a declared family of the right shape.
	outcomes := map[string]bool{}
	for _, s := range samples {
		fam := family(s.name)
		typ, ok := types[fam]
		if !ok {
			t.Fatalf("sample %s has no TYPE declaration", s.name)
		}
		if (fam != s.name) != (typ == "histogram") {
			t.Fatalf("sample %s under %s family %s", s.name, typ, fam)
		}
		if fam == "zoom_query_deep_total_ns" {
			outcomes[s.labels["outcome"]] = true
		}
	}
	for _, o := range []string{"hit", "miss", "shared-wait"} {
		if !outcomes[o] {
			t.Fatalf("no series with outcome=%q:\n%s", o, text)
		}
	}

	// Histogram invariants, per (family, non-le label set) series.
	type histSeries struct {
		les        []float64
		cums       []float64
		sum, count float64
		hasCount   bool
	}
	series := map[string]*histSeries{}
	key := func(fam string, labels map[string]string) string {
		var parts []string
		for k, v := range labels {
			if k != "le" {
				parts = append(parts, k+"="+v)
			}
		}
		sort.Strings(parts)
		return fam + "|" + strings.Join(parts, ",")
	}
	for _, s := range samples {
		fam := family(s.name)
		if types[fam] != "histogram" {
			continue
		}
		hs := series[key(fam, s.labels)]
		if hs == nil {
			hs = &histSeries{}
			series[key(fam, s.labels)] = hs
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("bucket sample without le: %+v", s)
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				var err error
				if bound, err = strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("bad le %q", le)
				}
			}
			hs.les = append(hs.les, bound)
			hs.cums = append(hs.cums, s.value)
		case strings.HasSuffix(s.name, "_sum"):
			hs.sum = s.value
		case strings.HasSuffix(s.name, "_count"):
			hs.count, hs.hasCount = s.value, true
		}
	}
	if len(series) != 4 { // 3 outcomes + lookup
		t.Fatalf("parsed %d histogram series, want 4", len(series))
	}
	for k, hs := range series {
		if !hs.hasCount {
			t.Fatalf("series %s missing _count", k)
		}
		if len(hs.les) < 2 || !math.IsInf(hs.les[len(hs.les)-1], 1) {
			t.Fatalf("series %s: buckets %v must end at +Inf", k, hs.les)
		}
		for i := 1; i < len(hs.les); i++ {
			if hs.les[i] <= hs.les[i-1] {
				t.Fatalf("series %s: le not increasing: %v", k, hs.les)
			}
			if hs.cums[i] < hs.cums[i-1] {
				t.Fatalf("series %s: cumulative counts decrease: %v", k, hs.cums)
			}
		}
		if last := hs.cums[len(hs.cums)-1]; last != hs.count {
			t.Fatalf("series %s: +Inf bucket %v != _count %v", k, last, hs.count)
		}
		if hs.count > 0 && hs.sum <= 0 {
			t.Fatalf("series %s: _sum %v with _count %v", k, hs.sum, hs.count)
		}
	}
}

// TestBucketCumSnapshot pins the satellite change directly: the snapshot's
// Cum fields are the running total over ALL buckets (including skipped
// empty ones), i.e. exactly what a _bucket{le} series reports.
func TestBucketCumSnapshot(t *testing.T) {
	var h Histogram
	vals := []int64{1, 1, 3, 900, 900, 900, 1 << 40}
	for _, v := range vals {
		h.Observe(v)
	}
	s := h.Snapshot()
	var running int64
	for i, b := range s.Buckets {
		running += b.Count
		if b.Cum != running {
			t.Fatalf("bucket %d (le=%d): cum=%d, want %d", i, b.UpperBound, b.Cum, running)
		}
	}
	if running != s.Count {
		t.Fatalf("bucket counts sum to %d, histogram count %d", running, s.Count)
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.Cum != s.Count {
		t.Fatalf("final cum %d != count %d", last.Cum, s.Count)
	}
}

// TestPromSplit covers name sanitization and outcome folding edge cases.
func TestPromSplit(t *testing.T) {
	cases := []struct{ ns, in, metric, labels string }{
		{"zoom", "query.deep_total_ns.hit", "zoom_query_deep_total_ns", `outcome="hit"`},
		{"zoom", "query.deep_total_ns.shared-wait", "zoom_query_deep_total_ns", `outcome="shared-wait"`},
		{"", "cache.hits", "cache_hits", ""},
		{"zoom", "batch.count", "zoom_batch_count", ""},
		{"zoom", "http.query.status.2xx", "zoom_http_query_status", `class="2xx"`},
		{"zoom", "http.batch.status.5xx", "zoom_http_batch_status", `class="5xx"`},
		{"zoom", "http.query.in_flight", "zoom_http_query_in_flight", ""},
		{"", "9lives", "_lives", ""}, // leading digit is not a valid name start
	}
	for _, c := range cases {
		m, l := promSplit(c.ns, c.in)
		if m != c.metric || l != c.labels {
			t.Errorf("promSplit(%q,%q) = (%q,%q), want (%q,%q)", c.ns, c.in, m, l, c.metric, c.labels)
		}
		if !promMetricName.MatchString(m) {
			t.Errorf("promSplit produced invalid name %q", m)
		}
	}
}
