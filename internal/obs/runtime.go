// Process runtime instrumentation: goroutine count, heap occupancy, GC
// pause distribution, uptime, and build info, sampled lazily at snapshot
// time. Both tiers of the cluster (worker and router) attach this so a
// scrape of either /metrics answers "is this process healthy?" without a
// sidecar exporter — and the cluster stats merge sums them into
// fleet-wide totals.
package obs

import (
	"runtime"
	"sync"
	"time"
)

// AttachRuntime registers runtime gauges on the registry, sampled by an
// OnSnapshot hook — the process pays one ReadMemStats per scrape and
// nothing between scrapes:
//
//	runtime.goroutines      current goroutine count
//	runtime.heap_bytes      live heap (HeapAlloc)
//	runtime.heap_objects    live heap object count
//	runtime.gc_runs         completed GC cycles
//	runtime.uptime_seconds  seconds since AttachRuntime
//	runtime.gc_pause_ns     histogram of individual GC pause times
//	runtime.build_info      info series: go version, GOOS, GOARCH
//
// Attaching twice would double-sample, so callers attach once per
// registry (the server and router constructors do). No-op on a nil
// registry.
func AttachRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	goroutines := reg.Gauge("runtime.goroutines")
	heapBytes := reg.Gauge("runtime.heap_bytes")
	heapObjects := reg.Gauge("runtime.heap_objects")
	gcRuns := reg.Gauge("runtime.gc_runs")
	uptime := reg.Gauge("runtime.uptime_seconds")
	gcPause := reg.Histogram("runtime.gc_pause_ns")
	reg.Info("runtime.build_info", map[string]string{
		"go_version": runtime.Version(),
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
	})
	start := time.Now()
	var mu sync.Mutex // snapshots may race; the pause-feed needs a cut
	var lastNumGC uint32
	reg.OnSnapshot(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapBytes.Set(int64(ms.HeapAlloc))
		heapObjects.Set(int64(ms.HeapObjects))
		gcRuns.Set(int64(ms.NumGC))
		uptime.Set(int64(time.Since(start).Seconds()))
		mu.Lock()
		// Feed pauses observed since the previous snapshot into the
		// histogram. PauseNs is a 256-entry ring indexed by GC cycle; if
		// more than 256 cycles passed between scrapes the overwritten
		// ones are gone — the histogram is a sample, not a ledger.
		from := lastNumGC
		if ms.NumGC-from > uint32(len(ms.PauseNs)) {
			from = ms.NumGC - uint32(len(ms.PauseNs))
		}
		for i := from; i < ms.NumGC; i++ {
			gcPause.Observe(int64(ms.PauseNs[i%uint32(len(ms.PauseNs))]))
		}
		lastNumGC = ms.NumGC
		mu.Unlock()
	})
}
