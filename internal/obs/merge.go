// Snapshot merging: how the router's /v1/cluster/stats folds N worker
// registries into one document. Counters and gauges sum; histograms merge
// bucket-wise (the power-of-two bucket bounds are identical across
// processes, so the merge is exact at bucket resolution) with quantiles
// recomputed from the merged distribution. Merging under a "shard.<k>."
// prefix keeps each worker's series distinguishable — the Prometheus
// renderer folds that prefix into a shard="<k>" label — while a second
// unprefixed merge accumulates fleet-wide totals.
package obs

import "sort"

// MergeInto folds src into dst, prefixing every series name. Counter and
// gauge values add onto any existing entry; histograms combine with
// MergeHistograms; info series overwrite (they are constant label sets,
// not accumulators). dst's maps are allocated on demand, so merging into
// a zero Snapshot works.
func MergeInto(dst *Snapshot, src Snapshot, prefix string) {
	if len(src.Counters) > 0 && dst.Counters == nil {
		dst.Counters = make(map[string]int64, len(src.Counters))
	}
	for name, v := range src.Counters {
		dst.Counters[prefix+name] += v
	}
	if len(src.Gauges) > 0 && dst.Gauges == nil {
		dst.Gauges = make(map[string]int64, len(src.Gauges))
	}
	for name, v := range src.Gauges {
		dst.Gauges[prefix+name] += v
	}
	if len(src.Histograms) > 0 && dst.Histograms == nil {
		dst.Histograms = make(map[string]HistogramSnapshot, len(src.Histograms))
	}
	for name, h := range src.Histograms {
		dst.Histograms[prefix+name] = MergeHistograms(dst.Histograms[prefix+name], h)
	}
	if len(src.Infos) > 0 && dst.Infos == nil {
		dst.Infos = make(map[string]map[string]string, len(src.Infos))
	}
	for name, labels := range src.Infos {
		cp := make(map[string]string, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
		dst.Infos[prefix+name] = cp
	}
}

// MergeHistograms combines two histogram snapshots taken from histograms
// with the same bucket layout (any two obs.Histograms qualify): counts
// add bucket-wise by upper bound, Sum and Count add, Max takes the
// larger, cumulative counts and the P50/P99 bucket bounds are recomputed
// from the merged distribution.
func MergeHistograms(a, b HistogramSnapshot) HistogramSnapshot {
	if a.Count == 0 && len(a.Buckets) == 0 {
		return b
	}
	if b.Count == 0 && len(b.Buckets) == 0 {
		return a
	}
	counts := make(map[int64]int64, len(a.Buckets)+len(b.Buckets))
	for _, bk := range a.Buckets {
		counts[bk.UpperBound] += bk.Count
	}
	for _, bk := range b.Buckets {
		counts[bk.UpperBound] += bk.Count
	}
	bounds := make([]int64, 0, len(counts))
	for ub := range counts {
		bounds = append(bounds, ub)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	out := HistogramSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum, Max: a.Max}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	var cum int64
	for _, ub := range bounds {
		cum += counts[ub]
		out.Buckets = append(out.Buckets, Bucket{UpperBound: ub, Count: counts[ub], Cum: cum})
	}
	out.P50 = mergedQuantile(out.Buckets, out.Count, 50)
	out.P99 = mergedQuantile(out.Buckets, out.Count, 99)
	return out
}

// mergedQuantile mirrors quantile over an explicit bucket list.
func mergedQuantile(buckets []Bucket, total, pct int64) int64 {
	if total == 0 {
		return 0
	}
	rank := (pct*total + 99) / 100
	if rank < 1 {
		rank = 1
	}
	for _, b := range buckets {
		if b.Cum >= rank {
			return b.UpperBound
		}
	}
	if n := len(buckets); n > 0 {
		return buckets[n-1].UpperBound
	}
	return 0
}
