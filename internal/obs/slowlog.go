package obs

import (
	"sync"
	"time"
)

// SlowEntry is one request a server considered slow: when it finished,
// how long it took, which route and request it was, and the full span tree
// so the slow stage is identifiable after the fact without re-running the
// query under a profiler. Both tiers use it — the worker logs its own
// handling, the router logs the whole forwarded request (including the
// worker's stitched subtree when the request was traced).
type SlowEntry struct {
	Time    time.Time `json:"time"`
	TraceID string    `json:"trace_id"`
	Route   string    `json:"route"`
	Request string    `json:"request,omitempty"`
	Status  int       `json:"status"`
	DurNs   int64     `json:"dur_ns"`
	Trace   SpanNode  `json:"trace"`
}

// SlowLog is a bounded ring buffer of slow requests. Adding the
// (size+1)-th entry overwrites the oldest; memory stays O(size) no matter
// how long the server runs. Safe for concurrent use.
type SlowLog struct {
	mu   sync.Mutex
	buf  []SlowEntry
	next int // index the next entry lands in
	full bool
}

// NewSlowLog returns a ring holding the most recent size entries
// (minimum 1).
func NewSlowLog(size int) *SlowLog {
	if size < 1 {
		size = 1
	}
	return &SlowLog{buf: make([]SlowEntry, size)}
}

// Add records one slow request, evicting the oldest when full.
func (l *SlowLog) Add(e SlowEntry) {
	l.mu.Lock()
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// Len returns the number of entries currently held.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return len(l.buf)
	}
	return l.next
}

// Entries returns the held entries, newest first.
func (l *SlowLog) Entries() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	out := make([]SlowEntry, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}
