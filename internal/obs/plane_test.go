package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTagsAndAdoptRoundTrip(t *testing.T) {
	tr := NewTrace("POST /v1/query")
	pick := tr.Root().StartChild("route.pick")
	pick.SetTag("run", "r1")
	pick.SetTag("shard", "0")
	pick.End()
	att := tr.Root().StartChild("replica.attempt")
	att.SetTag("addr", "http://w0")

	// A worker's finished tree, as it would arrive decoded from JSON.
	worker := SpanNode{
		Name:    "POST /v1/query",
		StartNs: 0,
		DurNs:   500,
		Tags:    map[string]string{"parent_span": tr.ID() + ".a0"},
		Children: []SpanNode{
			{Name: "query.lookup", StartNs: 10, DurNs: 100},
		},
	}
	att.Adopt(worker)
	att.End()
	node := tr.Finish()

	// Tags survive a JSON round trip.
	b, err := json.Marshal(node)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanNode
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if got := back.Find("route.pick"); got == nil || got.Tags["run"] != "r1" || got.Tags["shard"] != "0" {
		t.Fatalf("route.pick tags lost: %+v", got)
	}
	// The adopted subtree hangs under the attempt span and was rebased
	// onto the adopting span's start offset.
	attNode := back.Find("replica.attempt")
	if attNode == nil || len(attNode.Children) != 1 {
		t.Fatalf("adopted subtree missing: %+v", attNode)
	}
	adopted := attNode.Children[0]
	if adopted.Tags["parent_span"] != tr.ID()+".a0" {
		t.Fatalf("adopted root tags lost: %+v", adopted)
	}
	if adopted.StartNs != attNode.StartNs {
		t.Fatalf("adopted root not rebased: start %d, attempt start %d", adopted.StartNs, attNode.StartNs)
	}
	if lk := back.Find("query.lookup"); lk == nil || lk.StartNs != attNode.StartNs+10 {
		t.Fatalf("adopted child not rebased: %+v", lk)
	}
	// Nil-safety: both new methods are no-ops on nil spans.
	var nilSpan *Span
	nilSpan.SetTag("k", "v")
	nilSpan.Adopt(worker)
}

func TestSanitizeHeaderToken(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", ""},
		{"abc123.a0", "abc123.a0"},
		{"A-Z_z.9", "A-Z_z.9"},
		{"has space", ""},
		{"quote\"", ""},
		{"newline\n", ""},
		{"semi;colon", ""},
		{strings.Repeat("a", MaxHeaderToken), strings.Repeat("a", MaxHeaderToken)},
		{strings.Repeat("a", MaxHeaderToken+1), ""},
	}
	for _, c := range cases {
		if got := SanitizeHeaderToken(c.in); got != c.want {
			t.Errorf("SanitizeHeaderToken(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSlowLogEvictionOrder(t *testing.T) {
	sl := NewSlowLog(3)
	for i := 0; i < 5; i++ {
		sl.Add(SlowEntry{TraceID: fmt.Sprintf("%016d", i), DurNs: int64(i)})
	}
	if sl.Len() != 3 {
		t.Fatalf("len %d, want 3", sl.Len())
	}
	got := sl.Entries()
	// Newest first; the two oldest entries were evicted.
	want := []string{"0000000000000004", "0000000000000003", "0000000000000002"}
	for i, e := range got {
		if e.TraceID != want[i] {
			t.Fatalf("entries[%d] = %s, want %s (full: %+v)", i, e.TraceID, want[i], got)
		}
	}
}

// TestSlowLogConcurrentAdd hammers one ring from many goroutines (run
// under -race by `make race`): the ring must stay consistent — exactly
// `size` entries retained, every retained entry intact.
func TestSlowLogConcurrentAdd(t *testing.T) {
	const size, writers, perWriter = 8, 8, 200
	sl := NewSlowLog(size)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sl.Add(SlowEntry{
					TraceID: fmt.Sprintf("%08d%08d", w, i),
					Route:   "POST /v1/query",
					DurNs:   int64(i),
				})
				if i%32 == 0 {
					_ = sl.Entries()
				}
			}
		}(w)
	}
	wg.Wait()
	if sl.Len() != size {
		t.Fatalf("len %d, want %d", sl.Len(), size)
	}
	for _, e := range sl.Entries() {
		if len(e.TraceID) != 16 || e.Route != "POST /v1/query" {
			t.Fatalf("torn entry: %+v", e)
		}
	}
}

func TestMergeInto(t *testing.T) {
	mk := func(reqs int64, lat ...int64) Snapshot {
		reg := NewRegistry()
		reg.Counter("http.requests").Add(reqs)
		reg.Gauge("server.ready").Set(1)
		h := reg.Histogram("http.request_ns")
		for _, v := range lat {
			h.Observe(v)
		}
		reg.Info("runtime.build_info", map[string]string{"go_version": "go1.x"})
		return reg.Snapshot()
	}
	var dst Snapshot
	MergeInto(&dst, mk(3, 100, 200), "")
	MergeInto(&dst, mk(5, 1000), "")
	MergeInto(&dst, mk(5, 1000), "shard.1.")

	if dst.Counters["http.requests"] != 8 {
		t.Fatalf("merged counter %d, want 8", dst.Counters["http.requests"])
	}
	if dst.Counters["shard.1.http.requests"] != 5 {
		t.Fatalf("prefixed counter %d, want 5", dst.Counters["shard.1.http.requests"])
	}
	if dst.Gauges["server.ready"] != 2 {
		t.Fatalf("merged gauge %d, want 2 (summed)", dst.Gauges["server.ready"])
	}
	h := dst.Histograms["http.request_ns"]
	if h.Count != 3 || h.Sum != 1300 || h.Max != 1000 {
		t.Fatalf("merged histogram count/sum/max = %d/%d/%d", h.Count, h.Sum, h.Max)
	}
	// Cumulative counts must be recomputed and end at Count.
	if n := len(h.Buckets); n == 0 || h.Buckets[n-1].Cum != h.Count {
		t.Fatalf("merged buckets not cumulative: %+v", h.Buckets)
	}
	for i := 1; i < len(h.Buckets); i++ {
		if h.Buckets[i].UpperBound <= h.Buckets[i-1].UpperBound {
			t.Fatalf("merged bucket bounds unsorted: %+v", h.Buckets)
		}
		if h.Buckets[i].Cum < h.Buckets[i-1].Cum {
			t.Fatalf("merged Cum not monotone: %+v", h.Buckets)
		}
	}
	if h.P50 <= 0 || h.P99 < h.P50 {
		t.Fatalf("merged quantiles implausible: p50=%d p99=%d", h.P50, h.P99)
	}
	if dst.Infos["runtime.build_info"]["go_version"] != "go1.x" {
		t.Fatalf("info not merged: %+v", dst.Infos)
	}
	if dst.Infos["shard.1.runtime.build_info"] == nil {
		t.Fatalf("prefixed info not merged: %+v", dst.Infos)
	}
}

func TestPromShardReplicaLabels(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("router.shard.0.cache_hits").Add(7)
	reg.Counter("router.shard.1.cache_hits").Add(9)
	reg.Gauge("router.shard.0.replica.1.up").Set(1)
	reg.Counter("shard.2.http.requests").Add(4)
	var sb strings.Builder
	WritePrometheus(&sb, reg.Snapshot(), "zoom")
	out := sb.String()
	for _, want := range []string{
		"zoom_router_cache_hits{shard=\"0\"} 7",
		"zoom_router_cache_hits{shard=\"1\"} 9",
		"zoom_router_up{replica=\"1\",shard=\"0\"} 1",
		"zoom_http_requests{shard=\"2\"} 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One # TYPE line per family even when labels split the series.
	if n := strings.Count(out, "# TYPE zoom_router_cache_hits counter"); n != 1 {
		t.Errorf("want one TYPE line for the folded family, got %d", n)
	}
}

func TestPromInfoSeries(t *testing.T) {
	reg := NewRegistry()
	reg.Info("runtime.build_info", map[string]string{
		"go_version": "go1.24",
		"goos":       "linux",
		"tricky":     `a"b\c`,
	})
	var sb strings.Builder
	WritePrometheus(&sb, reg.Snapshot(), "zoom")
	out := sb.String()
	if !strings.Contains(out, `zoom_runtime_build_info{go_version="go1.24",goos="linux",tricky="a\"b\\c"} 1`) {
		t.Fatalf("info series missing or mis-escaped:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE zoom_runtime_build_info gauge") {
		t.Fatalf("info series untyped:\n%s", out)
	}
}

func TestAttachRuntime(t *testing.T) {
	reg := NewRegistry()
	AttachRuntime(reg)
	time.Sleep(2 * time.Millisecond) // let uptime tick past zero
	s := reg.Snapshot()
	if s.Gauges["runtime.goroutines"] <= 0 {
		t.Fatalf("goroutines gauge = %d", s.Gauges["runtime.goroutines"])
	}
	if s.Gauges["runtime.heap_bytes"] <= 0 {
		t.Fatalf("heap gauge = %d", s.Gauges["runtime.heap_bytes"])
	}
	if s.Infos["runtime.build_info"]["go_version"] == "" {
		t.Fatalf("build info missing: %+v", s.Infos)
	}
	// The gauges refresh per snapshot, not once at attach.
	s2 := reg.Snapshot()
	if s2.Gauges["runtime.uptime_seconds"] < s.Gauges["runtime.uptime_seconds"] {
		t.Fatalf("uptime went backwards: %d then %d",
			s.Gauges["runtime.uptime_seconds"], s2.Gauges["runtime.uptime_seconds"])
	}
}
