package obs

import (
	"context"
	"encoding/json"
	"regexp"
	"sync"
	"testing"
	"time"
)

// TestTraceSpanTree builds a small two-level tree and checks the snapshot
// has the right shape, plausible timings, and a well-formed id.
func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("POST /v1/query")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(tr.ID()) {
		t.Fatalf("trace id %q is not 16 hex digits", tr.ID())
	}
	ctx := tr.Context(context.Background())

	lctx, lookup := StartSpan(ctx, "query.lookup")
	if lookup == nil {
		t.Fatal("StartSpan on a traced context returned nil")
	}
	_, compute := StartSpan(lctx, "closure.compute")
	time.Sleep(time.Millisecond)
	compute.End()
	lookup.End()
	_, project := StartSpan(ctx, "query.project")
	project.End()

	root := tr.Finish()
	if root.Name != "POST /v1/query" {
		t.Fatalf("root name %q", root.Name)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2: %+v", len(root.Children), root.Children)
	}
	l := root.Find("query.lookup")
	if l == nil || len(l.Children) != 1 || l.Children[0].Name != "closure.compute" {
		t.Fatalf("lookup subtree wrong: %+v", l)
	}
	c := root.Find("closure.compute")
	if c.DurNs < int64(time.Millisecond) {
		t.Fatalf("compute span %dns, slept 1ms", c.DurNs)
	}
	// Containment: a child starts no earlier and lasts no longer than the
	// span that contains it.
	if c.StartNs < l.StartNs || c.StartNs+c.DurNs > l.StartNs+l.DurNs {
		t.Fatalf("compute [%d,+%d] escapes lookup [%d,+%d]", c.StartNs, c.DurNs, l.StartNs, l.DurNs)
	}
	if l.DurNs > root.DurNs {
		t.Fatalf("lookup (%dns) outlasts root (%dns)", l.DurNs, root.DurNs)
	}
	if root.Find("no.such.span") != nil {
		t.Fatal("Find invented a span")
	}

	// The tree must be JSON-shaped for ?trace=1 responses.
	b, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanNode
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Find("closure.compute") == nil {
		t.Fatalf("tree did not survive JSON round-trip: %s", b)
	}
}

// TestTraceNilSafety: every operation on the untraced path — nil spans,
// nil traces, contexts without a trace — must be a safe no-op, because
// instrumented code calls them unconditionally.
func TestTraceNilSafety(t *testing.T) {
	ctx := context.Background()
	if s := SpanFromContext(ctx); s != nil {
		t.Fatalf("untraced context yielded span %v", s)
	}
	if tr := TraceFromContext(ctx); tr != nil {
		t.Fatalf("untraced context yielded trace %v", tr)
	}
	ctx2, sp := StartSpan(ctx, "stage")
	if sp != nil {
		t.Fatal("StartSpan on untraced context returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan on untraced context replaced the context")
	}
	// All nil-receiver methods.
	sp.End()
	if c := sp.StartChild("x"); c != nil {
		t.Fatal("nil span spawned a child")
	}
	if sp.Trace() != nil {
		t.Fatal("nil span has a trace")
	}
	var tr *Trace
	if got := tr.Snapshot(); got.Name != "" || len(got.Children) != 0 {
		t.Fatalf("nil trace snapshot %+v", got)
	}
	if got := tr.Context(ctx); got != ctx {
		t.Fatal("nil trace changed the context")
	}
}

// TestTraceConcurrentChildren mirrors the batch worker pattern: many
// goroutines starting and ending sibling spans of the same parent (run
// under -race in CI).
func TestTraceConcurrentChildren(t *testing.T) {
	tr := NewTrace("POST /v1/batch")
	ctx := tr.Context(context.Background())
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				qctx, sp := StartSpan(ctx, "batch.query")
				_, inner := StartSpan(qctx, "query.lookup")
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	root := tr.Finish()
	if got := len(root.Children); got != workers*50 {
		t.Fatalf("%d children recorded, want %d", got, workers*50)
	}
	for _, c := range root.Children {
		if len(c.Children) != 1 || c.Children[0].Name != "query.lookup" {
			t.Fatalf("worker span lost its child: %+v", c)
		}
	}
}

// TestTraceSnapshotWhileRunning: Snapshot on a live trace reports running
// spans with their duration so far, without ending them.
func TestTraceSnapshotWhileRunning(t *testing.T) {
	tr := NewTrace("r")
	ctx := tr.Context(context.Background())
	_, sp := StartSpan(ctx, "slow")
	time.Sleep(time.Millisecond)
	snap := tr.Snapshot()
	n := snap.Find("slow")
	if n == nil || n.DurNs < int64(time.Millisecond) {
		t.Fatalf("running span reported %+v", n)
	}
	sp.End()
	final := tr.Finish()
	done := final.Find("slow")
	if done.DurNs < n.DurNs {
		t.Fatalf("final duration %d shrank below snapshot %d", done.DurNs, n.DurNs)
	}
}

// TestSpanEndTwice: a double End keeps the first end time.
func TestSpanEndTwice(t *testing.T) {
	tr := NewTrace("r")
	sp := tr.Root().StartChild("s")
	sp.End()
	snap1 := tr.Snapshot()
	d1 := snap1.Find("s").DurNs
	time.Sleep(2 * time.Millisecond)
	sp.End()
	snap2 := tr.Snapshot()
	if d2 := snap2.Find("s").DurNs; d2 != d1 {
		t.Fatalf("second End moved duration %d -> %d", d1, d2)
	}
}

// TestTraceWithID: a valid supplied id is adopted verbatim; anything else
// (wrong length, upper case, non-hex, empty) is replaced by a fresh one.
func TestTraceWithID(t *testing.T) {
	const id = "0123456789abcdef"
	if got := NewTraceWithID("r", id).ID(); got != id {
		t.Fatalf("valid id not adopted: got %q", got)
	}
	for _, bad := range []string{"", "short", "0123456789ABCDEF", "0123456789abcdeg",
		"0123456789abcdef0", "xxxxxxxxxxxxxxxx"} {
		tr := NewTraceWithID("r", bad)
		if tr.ID() == bad {
			t.Fatalf("invalid id %q adopted", bad)
		}
		if !ValidTraceID(tr.ID()) {
			t.Fatalf("replacement id %q is not valid", tr.ID())
		}
	}
}

// TestValidTraceID pins the 16-lower-hex shape.
func TestValidTraceID(t *testing.T) {
	if !ValidTraceID(NewTrace("r").ID()) {
		t.Fatal("fresh trace id does not validate")
	}
	for id, want := range map[string]bool{
		"0123456789abcdef": true,
		"ffffffffffffffff": true,
		"0123456789abcde":  false,
		"0123456789abcdeF": false,
		"":                 false,
	} {
		if got := ValidTraceID(id); got != want {
			t.Errorf("ValidTraceID(%q) = %v, want %v", id, got, want)
		}
	}
}
