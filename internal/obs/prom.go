// Prometheus text exposition (format version 0.0.4), rendered straight
// from a Snapshot with no external dependencies. Registry names are flat
// dotted strings; the renderer maps them onto the Prometheus data model:
//
//   - dots and other non-identifier characters become underscores, and
//     every series gets a namespace prefix ("zoom_" for the server);
//   - the per-outcome latency histograms the engine registers
//     (query.deep_total_ns.hit / .miss / .shared-wait) fold into ONE metric
//     family with an outcome label, which is how Prometheus wants
//     same-quantity-different-dimension series spelled;
//   - histograms emit cumulative _bucket{le="..."} series (from
//     Bucket.Cum), a _sum approximation, and _count, with the mandatory
//     le="+Inf" bucket equal to _count.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// outcomeLabels are the trailing name segments folded into an
// outcome="..." label instead of being part of the metric name.
var outcomeLabels = map[string]bool{"hit": true, "miss": true, "shared-wait": true}

// classLabels are the trailing name segments folded into a class="..."
// label — the per-route HTTP status-class counters the server registers
// (http.query.status.2xx / .4xx / .5xx) become one family per route.
var classLabels = map[string]bool{"1xx": true, "2xx": true, "3xx": true, "4xx": true, "5xx": true}

// allDigits reports whether s is a non-empty decimal string.
func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// promSplit maps a registry name to a sanitized metric name and an
// optional label set. Two foldings apply: a "shard.<n>" or "replica.<n>"
// segment pair anywhere in the name becomes a shard="n" / replica="n"
// label (so router.shard.0.replica.1.up and the cluster-stats merge's
// shard.0.http.requests render as ONE family split by labels, the shape
// Prometheus aggregation needs), and a trailing outcome/status-class
// segment becomes an outcome="..." / class="..." label as before.
func promSplit(namespace, name string) (metric, labels string) {
	var pairs []string
	if strings.Contains(name, "shard.") || strings.Contains(name, "replica.") {
		segs := strings.Split(name, ".")
		kept := make([]string, 0, len(segs))
		for i := 0; i < len(segs); i++ {
			if (segs[i] == "shard" || segs[i] == "replica") && i+1 < len(segs) && allDigits(segs[i+1]) {
				pairs = append(pairs, segs[i]+`="`+segs[i+1]+`"`)
				i++
				continue
			}
			kept = append(kept, segs[i])
		}
		name = strings.Join(kept, ".")
	}
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		switch tail := name[i+1:]; {
		case outcomeLabels[tail]:
			pairs = append(pairs, `outcome="`+tail+`"`)
			name = name[:i]
		case classLabels[tail]:
			pairs = append(pairs, `class="`+tail+`"`)
			name = name[:i]
		}
	}
	sort.Strings(pairs)
	labels = strings.Join(pairs, ",")
	var b strings.Builder
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9' && b.Len() > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String(), labels
}

// promSeries is one series of a family: its label set and source name.
type promSeries struct {
	labels string
	name   string // the original registry name
}

// groupFamilies buckets registry names by sanitized metric name so # TYPE
// is emitted once per family even when outcome labels split it into
// several series. Families and series come out sorted for deterministic
// scrapes.
func groupFamilies(namespace string, names []string) (familyNames []string, families map[string][]promSeries) {
	families = make(map[string][]promSeries)
	for _, name := range names {
		metric, labels := promSplit(namespace, name)
		families[metric] = append(families[metric], promSeries{labels: labels, name: name})
	}
	for metric, ss := range families {
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		families[metric] = ss
		familyNames = append(familyNames, metric)
	}
	sort.Strings(familyNames)
	return familyNames, families
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// infoLabels renders an info series' label map as sorted, escaped
// Prometheus label pairs.
func infoLabels(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for _, k := range sortedKeys(labels) {
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(labels[k])
		parts = append(parts, k+`="`+v+`"`)
	}
	return strings.Join(parts, ",")
}

// joinLabels merges a family label set with an extra pair (for le).
func joinLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. namespace prefixes every metric name ("zoom" is the server's
// convention); pass "" for none. The output is deterministic: families and
// series are sorted by name and label set.
func WritePrometheus(w io.Writer, s Snapshot, namespace string) {
	counterFams, counters := groupFamilies(namespace, sortedKeys(s.Counters))
	for _, fam := range counterFams {
		fmt.Fprintf(w, "# TYPE %s counter\n", fam)
		for _, ser := range counters[fam] {
			fmt.Fprintf(w, "%s%s %d\n", fam, joinLabels(ser.labels, ""), s.Counters[ser.name])
		}
	}
	gaugeFams, gauges := groupFamilies(namespace, sortedKeys(s.Gauges))
	for _, fam := range gaugeFams {
		fmt.Fprintf(w, "# TYPE %s gauge\n", fam)
		for _, ser := range gauges[fam] {
			fmt.Fprintf(w, "%s%s %d\n", fam, joinLabels(ser.labels, ""), s.Gauges[ser.name])
		}
	}
	infoFams, infos := groupFamilies(namespace, sortedKeys(s.Infos))
	for _, fam := range infoFams {
		fmt.Fprintf(w, "# TYPE %s gauge\n", fam)
		for _, ser := range infos[fam] {
			fmt.Fprintf(w, "%s%s 1\n", fam, joinLabels(ser.labels, infoLabels(s.Infos[ser.name])))
		}
	}
	histFams, hists := groupFamilies(namespace, sortedKeys(s.Histograms))
	for _, fam := range histFams {
		fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
		for _, ser := range hists[fam] {
			h := s.Histograms[ser.name]
			for _, b := range h.Buckets {
				fmt.Fprintf(w, "%s_bucket%s %d\n",
					fam, joinLabels(ser.labels, fmt.Sprintf(`le="%d"`, b.UpperBound)), b.Cum)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", fam, joinLabels(ser.labels, `le="+Inf"`), h.Count)
			fmt.Fprintf(w, "%s_sum%s %d\n", fam, joinLabels(ser.labels, ""), h.Sum)
			fmt.Fprintf(w, "%s_count%s %d\n", fam, joinLabels(ser.labels, ""), h.Count)
		}
	}
}
