package obs

import (
	"encoding/json"
	"expvar"
	"math"
	"sync"
	"testing"
)

// TestBucketBoundaries pins the power-of-two bucketing scheme: bucket 0
// holds exactly {0} (and clamped negatives), bucket i>0 holds
// [2^(i-1), 2^i - 1], and values past the last bound collapse into the
// final bucket.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1023, 10}, {1024, 11},
		{math.MaxInt64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// The exact powers of two sit just past the previous bucket's bound.
	for i := 1; i < 62; i++ {
		bound := BucketBound(i)
		if bound != int64(1)<<i-1 {
			t.Fatalf("BucketBound(%d) = %d, want %d", i, bound, int64(1)<<i-1)
		}
		if bucketOf(bound) != i {
			t.Errorf("upper bound %d landed in bucket %d, want %d", bound, bucketOf(bound), i)
		}
		if bucketOf(bound+1) != i+1 {
			t.Errorf("value %d landed in bucket %d, want %d", bound+1, bucketOf(bound+1), i+1)
		}
	}
	if BucketBound(0) != 0 || BucketBound(-1) != 0 {
		t.Fatal("bucket 0 bound must be 0")
	}
	if BucketBound(histBuckets-1) != math.MaxInt64 {
		t.Fatal("last bucket must absorb everything")
	}
}

// TestHistogramSnapshot checks count/sum/max and the factor-of-2 quantiles
// on a known distribution.
func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	// 90 fast observations (value 3 → bucket 2) and 10 slow (1000 → bucket 10).
	for i := 0; i < 90; i++ {
		h.Observe(3)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 90*3+10*1000 || s.Max != 1000 {
		t.Fatalf("count=%d sum=%d max=%d", s.Count, s.Sum, s.Max)
	}
	// p50 is in the fast bucket (upper bound 3), p99 in the slow one (1023).
	if s.P50 != 3 {
		t.Fatalf("p50 = %d, want 3", s.P50)
	}
	if s.P99 != 1023 {
		t.Fatalf("p99 = %d, want 1023", s.P99)
	}
	if len(s.Buckets) != 2 {
		t.Fatalf("got %d non-empty buckets, want 2: %+v", len(s.Buckets), s.Buckets)
	}
	if s.Buckets[0].UpperBound != 3 || s.Buckets[0].Count != 90 ||
		s.Buckets[1].UpperBound != 1023 || s.Buckets[1].Count != 10 {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
}

// TestNilInstruments: a nil registry hands out nil instruments whose
// methods all no-op — the detached mode instrumented code relies on.
func TestNilInstruments(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("x"), r.Gauge("y"), r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Histograms != nil {
		t.Fatal("nil registry must snapshot empty")
	}
	if err := r.Publish("nil-reg"); err != nil {
		t.Fatalf("nil registry Publish: %v", err)
	}
	if expvar.Get("nil-reg") != nil {
		t.Fatal("nil registry must not publish anything")
	}
}

// TestRegistryStablePointers: the same name always resolves to the same
// instrument, so attach-time resolution is sound.
func TestRegistryStablePointers(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter pointer not stable")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram pointer not stable")
	}
	r.Counter("a").Add(2)
	r.Gauge("g").Set(-7)
	r.Histogram("h").Observe(5)
	s := r.Snapshot()
	if s.Counters["a"] != 2 || s.Gauges["g"] != -7 || s.Histograms["h"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

// TestConcurrentRecording hammers one registry from many goroutines — run
// under -race — and checks the totals are exact at the quiescent point.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const goroutines = 32
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Everyone resolves by name concurrently too, exercising the
			// registry map lock alongside the lock-free recording.
			c := r.Counter("ops")
			h := r.Histogram("lat")
			gauge := r.Gauge("level")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(int64(i % 100))
				gauge.Set(int64(g))
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["ops"] != goroutines*perG {
		t.Fatalf("ops = %d, want %d", s.Counters["ops"], goroutines*perG)
	}
	hs := s.Histograms["lat"]
	if hs.Count != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", hs.Count, goroutines*perG)
	}
	if hs.Max != 99 {
		t.Fatalf("histogram max = %d, want 99", hs.Max)
	}
	if lvl := s.Gauges["level"]; lvl < 0 || lvl >= goroutines {
		t.Fatalf("gauge = %d, want one of the writers' values", lvl)
	}
}

// TestExpvarRoundTrip publishes a registry, reads it back through the
// expvar table as JSON, and checks the values survive. Expvar names are
// process-global, so the name is unique to this test.
func TestExpvarRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries").Add(11)
	r.Histogram("ns").Observe(500)
	if err := r.Publish("obs-test-roundtrip"); err != nil {
		t.Fatal(err)
	}
	// Publishing the same name again must error, not panic.
	if err := NewRegistry().Publish("obs-test-roundtrip"); err == nil {
		t.Fatal("duplicate publish did not error")
	}
	v := expvar.Get("obs-test-roundtrip")
	if v == nil {
		t.Fatal("registry not in expvar table")
	}
	var got Snapshot
	if err := json.Unmarshal([]byte(v.String()), &got); err != nil {
		t.Fatalf("expvar value is not JSON: %v", err)
	}
	if got.Counters["queries"] != 11 {
		t.Fatalf("counters = %+v", got.Counters)
	}
	hs := got.Histograms["ns"]
	if hs.Count != 1 || hs.Max != 500 || hs.P50 != 511 {
		t.Fatalf("histogram = %+v", hs)
	}
	// The published Func is live: later recording shows up on re-read.
	r.Counter("queries").Inc()
	if err := json.Unmarshal([]byte(expvar.Get("obs-test-roundtrip").String()), &got); err != nil {
		t.Fatal(err)
	}
	if got.Counters["queries"] != 12 {
		t.Fatalf("expvar reading is not live: %+v", got.Counters)
	}
}
