// Package obs is the observability layer of the warehouse: a small,
// dependency-free metrics registry holding atomic counters, gauges, and
// power-of-two-bucket latency histograms. The paper's headline result is a
// latency claim — deep provenance in ~13 ms once the
// compute-UAdmin-then-project strategy has warmed its temporary-table
// cache — and this package is how the reproduction observes where query
// time actually goes (cache hit vs. closure compute vs. projection)
// instead of asserting it.
//
// Design constraints, in order:
//
//   - Near-zero cost when detached. Every instrument method is safe on a
//     nil receiver and does nothing, so instrumented code holds plain
//     (possibly nil) *Counter/*Histogram fields and never branches on a
//     registry. Callers that need wall-clock readings additionally gate
//     their time.Now calls on "is anything attached".
//   - Race-free under concurrent recording. All state is sync/atomic;
//     recording never takes a lock. The registry's own map is guarded by a
//     mutex, but hot paths resolve their instruments once at attach time
//     and never touch the map again.
//   - Legible export. Snapshot renders everything as plain maps; the
//     registry also registers with expvar so any HTTP embedder gets
//     /debug/vars for free.
package obs

import (
	"expvar"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Safe (and a no-op) on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe (and a no-op) on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (pool sizes, bytes resident).
type Gauge struct{ v atomic.Int64 }

// Set stores v. Safe (and a no-op) on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta. Safe (and a no-op) on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two buckets. Bucket i holds the
// values whose bit length is i — bucket 0 holds exactly 0, bucket i>0
// holds [2^(i-1), 2^i - 1] — so any non-negative int64 lands in a bucket
// with one bits.Len64 call and no search. The last bucket absorbs
// everything with bit length >= histBuckets-1.
const histBuckets = 64

// Histogram is a lock-free latency histogram with power-of-two buckets.
// Observations are typically nanoseconds; quantiles are reported as the
// upper bound of the bucket containing the quantile, i.e. with factor-of-2
// resolution — plenty to tell a cache hit (µs) from a closure compute (ms),
// which is what the per-stage query breakdown needs.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// bucketOf maps a value to its bucket index. Negative values (clock skew)
// clamp to bucket 0 rather than corrupting the distribution.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i: 0 for bucket
// 0, 2^i - 1 otherwise.
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1) // math.MaxInt64
	}
	return int64(1)<<i - 1
}

// Observe records one value. Safe (and a no-op) on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the largest value the bucket holds (inclusive).
	UpperBound int64 `json:"le"`
	// Count is the number of observations in the bucket.
	Count int64 `json:"n"`
	// Cum is the cumulative count of observations <= UpperBound — exactly
	// the value a Prometheus `_bucket{le="..."}` series reports, so the
	// text exposition renders straight off the snapshot.
	Cum int64 `json:"cum"`
}

// HistogramSnapshot is a point-in-time reading of a histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	// P50 and P99 are the upper bounds of the buckets containing the
	// quantiles (factor-of-2 resolution).
	P50     int64    `json:"p50"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot reads the histogram. The reading is not one instantaneous cut
// under concurrent recording — each bucket is exact, but the set may span
// a few in-flight observations; at any quiescent point it is exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	var counts [histBuckets]int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		s.Count += counts[i]
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	var cum int64
	for i, n := range counts {
		cum += n
		if n > 0 {
			s.Buckets = append(s.Buckets, Bucket{UpperBound: BucketBound(i), Count: n, Cum: cum})
		}
	}
	s.P50 = quantile(&counts, s.Count, 50)
	s.P99 = quantile(&counts, s.Count, 99)
	return s
}

// quantile returns the upper bound of the bucket holding the pct-th
// percentile observation (rank = ceil(pct/100 * count)).
func quantile(counts *[histBuckets]int64, total, pct int64) int64 {
	if total == 0 {
		return 0
	}
	rank := (pct*total + 99) / 100
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range counts {
		cum += n
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(histBuckets - 1)
}

// Registry is a named collection of instruments. The zero value is not
// usable; call NewRegistry. A nil *Registry is a valid "detached" registry:
// every lookup returns a nil instrument whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	infos    map[string]map[string]string

	// hookMu guards hooks separately from mu: hooks run BEFORE Snapshot
	// takes mu, so a hook may freely Set gauges it resolved at attach time
	// (or even create instruments) without deadlocking.
	hookMu sync.Mutex
	hooks  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		infos:    make(map[string]map[string]string),
	}
}

// OnSnapshot registers fn to run at the start of every Snapshot call,
// before the registry is read — the seam lazy instrumentation hangs off
// (AttachRuntime samples the Go runtime here, so gauges are current at
// every scrape but cost nothing between scrapes). fn may record to any
// instrument; it runs outside the registry lock. No-op on a nil registry.
func (r *Registry) OnSnapshot(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.hookMu.Lock()
	r.hooks = append(r.hooks, fn)
	r.hookMu.Unlock()
}

// Info records a constant labeled series (build info, version stamps):
// the snapshot carries the label set verbatim and the Prometheus
// exposition renders it as a gauge with value 1, the conventional
// `*_info{...} 1` shape. Setting the same name twice replaces the label
// set. No-op on a nil registry.
func (r *Registry) Info(name string, labels map[string]string) {
	if r == nil {
		return
	}
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	r.mu.Lock()
	r.infos[name] = cp
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op instrument) on a nil registry. The returned pointer is stable:
// resolve it once at attach time and record lock-free forever after.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil registry →
// nil instrument).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use (nil
// registry → nil instrument).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time export of a whole registry, shaped for JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Infos      map[string]map[string]string `json:"infos,omitempty"`
}

// Snapshot reads every instrument, after running any OnSnapshot hooks.
// Under concurrent recording each value is individually exact; the set is
// not one instantaneous cut. A nil registry snapshots to the zero
// Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.hookMu.Lock()
	hooks := make([]func(), len(r.hooks))
	copy(hooks, r.hooks)
	r.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Counters = make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	s.Gauges = make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	if len(r.infos) > 0 {
		s.Infos = make(map[string]map[string]string, len(r.infos))
		for name, labels := range r.infos {
			cp := make(map[string]string, len(labels))
			for k, v := range labels {
				cp[k] = v
			}
			s.Infos[name] = cp
		}
	}
	return s
}

// publishMu serializes Publish calls: expvar.Publish panics on duplicate
// names, so the existence check and the publish must be atomic.
var publishMu sync.Mutex

// Publish registers the registry with the process-global expvar table
// under the given name, so any HTTP embedder that serves
// expvar.Handler() (or the default /debug/vars) exports a live Snapshot
// for free. Publishing a name twice is an error (expvar names are
// process-global and permanent); a nil registry publishes nothing.
func (r *Registry) Publish(name string) error {
	if r == nil {
		return nil
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return fmt.Errorf("obs: expvar name %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return nil
}
