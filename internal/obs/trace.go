// Request-scoped tracing: a lightweight span tree carried through a
// context.Context. Where the Registry aggregates (histograms answer "how
// slow are queries lately?"), a Trace explains one request ("why was THIS
// query slow?"): every stage the request passed through — engine lookup and
// projection, closure compute or singleflight wait, each batch worker's
// query — records a span, and the finished tree is returned inline
// (?trace=1), referenced by the X-Zoom-Trace-Id response header, and kept
// in the server's slow-query log.
//
// The design constraint matches the rest of the package: code that is not
// being traced must pay next to nothing. A context without a trace yields a
// nil *Span from SpanFromContext/StartSpan, and every Span method is safe
// (and a no-op) on a nil receiver, so instrumented paths hold plain
// possibly-nil span values and never branch on "is tracing on" beyond the
// one context lookup at the request boundary.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is the span tree of one request. Create one per request at the
// boundary (the HTTP handler), derive a context with Context, and hand that
// context down; instrumented stages add child spans via StartSpan. A Trace
// is safe for concurrent use: batch workers may start sibling spans of the
// same parent at once.
type Trace struct {
	id   string
	t0   time.Time
	root *Span
}

// traceSeq de-duplicates fallback trace ids if crypto/rand ever fails.
var traceSeq atomic.Uint64

// newTraceID returns a 16-hex-digit random id.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// No entropy (essentially impossible): fall back to a process-unique
		// counter so ids stay distinct, if predictable.
		n := traceSeq.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// NewTrace starts a trace whose root span has the given name (conventionally
// the request route, e.g. "POST /v1/query"). The root span is already
// started; Finish ends it.
func NewTrace(name string) *Trace {
	return NewTraceWithID(name, "")
}

// NewTraceWithID is NewTrace with a caller-supplied trace id — how a
// routed request keeps one id end-to-end: the router mints the id, sends
// it in X-Zoom-Trace-Id, and the worker adopts it instead of minting its
// own, so both slow logs and both responses name the same trace. An id
// that fails ValidTraceID (including "") is replaced by a fresh random
// one, so a malicious or sloppy client cannot inject arbitrary strings
// into logs and headers.
func NewTraceWithID(name, id string) *Trace {
	if !ValidTraceID(id) {
		id = newTraceID()
	}
	t := &Trace{id: id, t0: time.Now()}
	t.root = &Span{tr: t, name: name}
	return t
}

// ValidTraceID reports whether id is a well-formed trace id: exactly 16
// lower-case hex digits, the shape newTraceID produces.
func ValidTraceID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// MaxHeaderToken bounds SanitizeHeaderToken's accepted length.
const MaxHeaderToken = 64

// SanitizeHeaderToken validates an inbound correlation token (the
// X-Zoom-Parent-Span header a router sends with a forwarded request): at
// most MaxHeaderToken bytes, drawn entirely from [a-zA-Z0-9._-]. Anything
// else — control characters, quotes, an over-long value — returns "", so
// a hostile header can never reach a log line, a span tag, or a response
// body. The trace-id header has its own, stricter gate (ValidTraceID).
func SanitizeHeaderToken(s string) string {
	if len(s) == 0 || len(s) > MaxHeaderToken {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return s
}

// ID returns the trace id (16 hex digits) — the value of X-Zoom-Trace-Id.
func (t *Trace) ID() string { return t.id }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// Context returns a context carrying the trace's root span (and the trace
// itself, for TraceFromContext). StartSpan on the returned context creates
// children of the root.
func (t *Trace) Context(ctx context.Context) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, t.root)
}

// Finish ends the root span and returns the completed tree. Call it after
// every stage has ended (all workers joined).
func (t *Trace) Finish() SpanNode {
	t.root.End()
	return t.Snapshot()
}

// Snapshot returns the current tree without ending anything; spans still
// running report their duration as of now. This is what serves inline
// ?trace=1 responses, where the response encoding itself is necessarily
// outside the snapshot.
func (t *Trace) Snapshot() SpanNode {
	if t == nil {
		return SpanNode{}
	}
	return t.root.snapshot()
}

// Span is one timed stage of a trace. All methods are safe (and no-ops) on
// a nil receiver — the untraced case.
type Span struct {
	tr      *Trace
	name    string
	startNs int64 // since the trace's t0; the root starts at 0

	mu       sync.Mutex
	endNs    int64 // 0 while running
	children []*Span
	tags     map[string]string
	adopted  []SpanNode // imported subtrees (see Adopt)
}

// SetTag annotates the span with a key/value pair (replica address, cache
// outcome, shard index). Safe (and a no-op) on a nil receiver; safe for
// concurrent use with snapshots.
func (s *Span) SetTag(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.tags == nil {
		s.tags = make(map[string]string, 4)
	}
	s.tags[key] = value
	s.mu.Unlock()
}

// Adopt grafts an imported, already-finished span tree (a worker's span
// tree decoded from a forwarded response) under s as a child subtree. The
// imported tree's StartNs values are relative to ITS trace's start; Adopt
// rebases them onto this trace's timeline by adding s's own start offset,
// so the child renders inside its parent on one shared timeline. (Clock
// skew between the two processes is unknowable without synchronized
// clocks; the convention is that the adopted root begins when the
// adopting span does.) Safe (and a no-op) on a nil receiver.
func (s *Span) Adopt(node SpanNode) {
	if s == nil {
		return
	}
	rebase(&node, s.startNs)
	s.mu.Lock()
	s.adopted = append(s.adopted, node)
	s.mu.Unlock()
}

// rebase shifts every StartNs in the tree by off.
func rebase(n *SpanNode, off int64) {
	n.StartNs += off
	for i := range n.Children {
		rebase(&n.Children[i], off)
	}
}

// Trace returns the trace the span belongs to (nil on a nil span).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// StartChild starts a named child span. Safe for concurrent use by sibling
// workers; returns nil on a nil receiver.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, startNs: time.Since(s.tr.t0).Nanoseconds()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End marks the span finished. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Since(s.tr.t0).Nanoseconds()
	s.mu.Lock()
	if s.endNs == 0 {
		s.endNs = now
	}
	s.mu.Unlock()
}

// snapshot copies the subtree rooted at s.
func (s *Span) snapshot() SpanNode {
	s.mu.Lock()
	end := s.endNs
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	var tags map[string]string
	if len(s.tags) > 0 {
		tags = make(map[string]string, len(s.tags))
		for k, v := range s.tags {
			tags[k] = v
		}
	}
	adopted := make([]SpanNode, len(s.adopted))
	copy(adopted, s.adopted)
	s.mu.Unlock()
	if end == 0 {
		end = time.Since(s.tr.t0).Nanoseconds()
	}
	n := SpanNode{Name: s.name, StartNs: s.startNs, DurNs: end - s.startNs, Tags: tags}
	if n.DurNs < 0 {
		n.DurNs = 0
	}
	for _, c := range kids {
		n.Children = append(n.Children, c.snapshot())
	}
	n.Children = append(n.Children, adopted...)
	return n
}

// SpanNode is one span in a snapshotted trace tree, shaped for JSON.
// StartNs is relative to the trace start, so a rendering can lay spans out
// on one shared timeline.
type SpanNode struct {
	Name     string            `json:"name"`
	StartNs  int64             `json:"start_ns"`
	DurNs    int64             `json:"dur_ns"`
	Tags     map[string]string `json:"tags,omitempty"`
	Children []SpanNode        `json:"children,omitempty"`
}

// Find returns the first node with the given name in a depth-first walk of
// the subtree (including n itself), or nil.
func (n *SpanNode) Find(name string) *SpanNode {
	if n.Name == name {
		return n
	}
	for i := range n.Children {
		if f := n.Children[i].Find(name); f != nil {
			return f
		}
	}
	return nil
}

// spanCtxKey carries the current span through a context.
type spanCtxKey struct{}

// SpanFromContext returns the context's current span, or nil when the
// request is not being traced.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// TraceFromContext returns the trace the context's span belongs to, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	return SpanFromContext(ctx).Trace()
}

// StartSpan starts a child of the context's current span and returns a
// context carrying the child. On an untraced context it returns the context
// unchanged and a nil span — one interface lookup, no allocation — which is
// what keeps disabled tracing off the hot path.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.StartChild(name)
	return context.WithValue(ctx, spanCtxKey{}, c), c
}
