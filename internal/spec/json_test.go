package spec

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := Phylogenomics()
	data, err := Encode(orig)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if back.Name() != orig.Name() {
		t.Fatalf("name = %q, want %q", back.Name(), orig.Name())
	}
	if !reflect.DeepEqual(back.Modules(), orig.Modules()) {
		t.Fatalf("modules differ:\n%v\n%v", back.Modules(), orig.Modules())
	}
	if !reflect.DeepEqual(back.Edges(), orig.Edges()) {
		t.Fatalf("edges differ:\n%v\n%v", back.Edges(), orig.Edges())
	}
	if back.Fingerprint() != orig.Fingerprint() {
		t.Fatal("fingerprint changed across round trip")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := Decode([]byte(`{"name":"x","modules":[{"name":"INPUT"}],"edges":[]}`)); !errors.Is(err, ErrBadModule) {
		t.Fatalf("reserved module name accepted: %v", err)
	}
	if _, err := Decode([]byte(`{"name":"x","modules":[{"name":"A"}],"edges":[["A","ghost"]]}`)); !errors.Is(err, ErrBadEdge) {
		t.Fatal("edge to unknown module accepted")
	}
	// Structurally valid JSON but the spec fails validation (A dangling).
	_, err := Decode([]byte(`{"name":"x","modules":[{"name":"A"}],"edges":[["INPUT","OUTPUT"]]}`))
	if !errors.Is(err, ErrNotConnected) && !errors.Is(err, ErrNoOutputPath) {
		t.Fatalf("invalid spec decoded without error: %v", err)
	}
}

func TestDecodeDeterministicEncoding(t *testing.T) {
	s := Phylogenomics()
	a, _ := Encode(s)
	b, _ := Encode(s)
	if string(a) != string(b) {
		t.Fatal("Encode is not deterministic")
	}
	if !strings.Contains(string(a), `"phylogenomics"`) {
		t.Fatalf("encoded form missing name: %s", a)
	}
}

func TestFromGraph(t *testing.T) {
	g := graph.New()
	g.AddEdge(Input, "A")
	g.AddEdge("A", "B")
	g.AddEdge("B", Output)
	s, err := FromGraph("fg", g, map[string]Kind{"A": KindFormatting})
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	a, _ := s.Module("A")
	if a.Kind != KindFormatting {
		t.Fatalf("kind override lost: %v", a)
	}
	b, _ := s.Module("B")
	if b.Kind != KindScientific {
		t.Fatalf("default kind missing: %v", b)
	}
	if s.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", s.NumEdges())
	}
}

func TestFromGraphRejectsBadEdges(t *testing.T) {
	g := graph.New()
	g.AddEdge("A", Input) // illegal direction
	if _, err := FromGraph("bad", g, nil); !errors.Is(err, ErrBadEdge) {
		t.Fatalf("edge into INPUT accepted: %v", err)
	}
}
