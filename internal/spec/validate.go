package spec

import (
	"errors"
	"fmt"

	"repro/internal/spec/internalutil"
)

// Validation errors. They wrap the package-level sentinels so callers can
// classify failures with errors.Is.
var (
	// ErrBadModule reports an invalid module definition.
	ErrBadModule = errors.New("spec: invalid module")
	// ErrBadEdge reports an invalid edge definition.
	ErrBadEdge = errors.New("spec: invalid edge")
	// ErrNotConnected reports a module that is not on any INPUT->OUTPUT path.
	ErrNotConnected = errors.New("spec: module not on an input-output path")
	// ErrNoOutputPath reports that OUTPUT is unreachable from INPUT.
	ErrNoOutputPath = errors.New("spec: no path from input to output")
)

// Validate checks the structural well-formedness required by the paper's
// model: INPUT is a source, OUTPUT is a sink (enforced by construction), and
// every module lies on some path from INPUT to OUTPUT.
func (s *Spec) Validate() error {
	if s.NumModules() == 0 {
		if !s.g.HasEdge(Input, Output) {
			return fmt.Errorf("spec %q: empty specification: %w", s.name, ErrNoOutputPath)
		}
		return nil
	}
	fwd := s.g.Reach(Input)
	if !fwd[Output] {
		return fmt.Errorf("spec %q: %w", s.name, ErrNoOutputPath)
	}
	bwd := s.g.ReachBack(Output)
	for _, name := range s.ModuleNames() {
		if !fwd[name] {
			return fmt.Errorf("spec %q: module %q unreachable from input: %w", s.name, name, ErrNotConnected)
		}
		if !bwd[name] {
			return fmt.Errorf("spec %q: module %q cannot reach output: %w", s.name, name, ErrNotConnected)
		}
	}
	return nil
}

// IsAcyclic reports whether the specification contains no loops.
func (s *Spec) IsAcyclic() bool { return s.g.IsAcyclic() }

// LoopCount returns the number of distinct back edges found by a
// deterministic DFS — the number of loop constructs for the simple-loop
// specifications produced by the generator.
func (s *Spec) LoopCount() int { return len(s.g.BackEdges()) }

// Fingerprint returns a short stable hash of the specification's structure,
// used by the warehouse to detect that a run refers to a different version
// of a same-named specification.
func (s *Spec) Fingerprint() string {
	h := internalutil.NewHasher()
	h.WriteString(s.name)
	for _, m := range s.Modules() {
		h.WriteString("|m:" + m.Name + ":" + string(m.Kind))
	}
	for _, e := range s.g.Edges() {
		h.WriteString("|e:" + e.From + ">" + e.To)
	}
	return h.Sum()
}
