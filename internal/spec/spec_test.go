package spec

import (
	"errors"
	"reflect"
	"testing"
)

func TestAddModuleValidation(t *testing.T) {
	s := New("t")
	if err := s.AddModule(Module{Name: ""}); !errors.Is(err, ErrBadModule) {
		t.Fatalf("empty name: err = %v", err)
	}
	if err := s.AddModule(Module{Name: Input}); !errors.Is(err, ErrBadModule) {
		t.Fatalf("reserved name: err = %v", err)
	}
	if err := s.AddModule(Module{Name: "A"}); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}
	if err := s.AddModule(Module{Name: "A"}); !errors.Is(err, ErrBadModule) {
		t.Fatalf("duplicate: err = %v", err)
	}
	m, ok := s.Module("A")
	if !ok || m.Kind != KindScientific {
		t.Fatalf("default kind not applied: %+v ok=%v", m, ok)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	s := New("t")
	s.MustAddModule(Module{Name: "A"})
	if err := s.AddEdge("A", Input); !errors.Is(err, ErrBadEdge) {
		t.Fatalf("edge into INPUT: err = %v", err)
	}
	if err := s.AddEdge(Output, "A"); !errors.Is(err, ErrBadEdge) {
		t.Fatalf("edge out of OUTPUT: err = %v", err)
	}
	if err := s.AddEdge("A", "ghost"); !errors.Is(err, ErrBadEdge) {
		t.Fatalf("unknown module: err = %v", err)
	}
	if err := s.AddEdge(Input, "A"); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := s.AddEdge("A", Output); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
}

func TestValidateConnectivity(t *testing.T) {
	s := New("t")
	s.MustAddModule(Module{Name: "A"})
	s.MustAddModule(Module{Name: "B"})
	s.MustAddEdge(Input, "A")
	s.MustAddEdge("A", Output)
	if err := s.Validate(); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("dangling module B: err = %v", err)
	}
	s.MustAddEdge(Input, "B")
	if err := s.Validate(); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("B cannot reach output: err = %v", err)
	}
	s.MustAddEdge("B", Output)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestValidateEmpty(t *testing.T) {
	s := New("empty")
	if err := s.Validate(); !errors.Is(err, ErrNoOutputPath) {
		t.Fatalf("empty spec: err = %v", err)
	}
	s.MustAddEdge(Input, Output)
	if err := s.Validate(); err != nil {
		t.Fatalf("trivial INPUT->OUTPUT spec rejected: %v", err)
	}
}

func TestValidateNoOutputPath(t *testing.T) {
	s := New("t")
	s.MustAddModule(Module{Name: "A"})
	s.MustAddEdge(Input, "A")
	if err := s.Validate(); !errors.Is(err, ErrNoOutputPath) {
		t.Fatalf("unreachable OUTPUT: err = %v", err)
	}
}

func TestPhylogenomicsShape(t *testing.T) {
	s := Phylogenomics()
	if err := s.Validate(); err != nil {
		t.Fatalf("Figure 1 spec invalid: %v", err)
	}
	if got := s.NumModules(); got != 8 {
		t.Fatalf("NumModules = %d, want 8", got)
	}
	if s.IsAcyclic() {
		t.Fatal("Figure 1 contains the M3-M4-M5 loop; spec must be cyclic")
	}
	if got := s.LoopCount(); got != 1 {
		t.Fatalf("LoopCount = %d, want 1", got)
	}
	// The loop: M3 -> M4 -> M5 -> M3.
	for _, e := range [][2]string{{"M3", "M4"}, {"M4", "M5"}, {"M5", "M3"}} {
		if !s.Graph().HasEdge(e[0], e[1]) {
			t.Fatalf("missing loop edge %v", e)
		}
	}
	if got := s.ScientificModules(); !reflect.DeepEqual(got, []string{"M3", "M7"}) {
		t.Fatalf("ScientificModules = %v", got)
	}
	if got := s.Successors("M4"); !reflect.DeepEqual(got, []string{"M5", "M7"}) {
		t.Fatalf("Successors(M4) = %v", got)
	}
	if got := s.Predecessors("M7"); !reflect.DeepEqual(got, []string{"M4", "M6", "M8"}) {
		t.Fatalf("Predecessors(M7) = %v", got)
	}
}

func TestFigure6Statements(t *testing.T) {
	// Verify the fixture reproduces every rpred/rsucc fact the paper states.
	s, relevant := Figure6()
	if err := s.Validate(); err != nil {
		t.Fatalf("Figure 6 invalid: %v", err)
	}
	rel := make(map[string]bool)
	for _, r := range relevant {
		rel[r] = true
	}
	avoid := func(n string) bool { return rel[n] }
	g := s.Graph()

	nrPath := func(from, to string) bool { return g.HasPathAvoiding(from, to, avoid) }

	// "there exists an nr-path from input to M2, but not from input to M7"
	// is stated for Figure 1; for Figure 6 the paper states:
	if !nrPath(Input, "M3") {
		t.Fatal("input must nr-reach M3 (via M1/M2/M4/M5)")
	}
	// rpred(M4) = rpred(M5) = {input}
	for _, n := range []string{"M4", "M5"} {
		if !nrPath(Input, n) || nrPath("M3", n) || nrPath("M6", n) {
			t.Fatalf("rpred(%s) != {input}", n)
		}
	}
	// rsucc(M4) = rsucc(M5) = {M3, output}
	for _, n := range []string{"M4", "M5"} {
		if !nrPath(n, "M3") || !nrPath(n, Output) {
			t.Fatalf("rsucc(%s) missing M3/output", n)
		}
		if nrPath(n, "M6") {
			t.Fatalf("rsucc(%s) unexpectedly contains M6", n)
		}
	}
	// rsucc(M1) = {M3, M6, output}
	if !nrPath("M1", "M3") || !nrPath("M1", "M6") || !nrPath("M1", Output) {
		t.Fatal("rsucc(M1) != {M3, M6, output}")
	}
	// rpred(M7) = {input, M6}; rsucc(M7) = {output}
	if !nrPath(Input, "M7") || !nrPath("M6", "M7") {
		t.Fatal("rpred(M7) != {input, M6}")
	}
	if nrPath("M3", "M7") {
		t.Fatal("M3 must not nr-reach M7")
	}
	if !nrPath("M7", Output) || nrPath("M7", "M3") || nrPath("M7", "M6") {
		t.Fatal("rsucc(M7) != {output}")
	}
	// in(M3) = {M2}: rsucc(M2) = {M3} only.
	if !nrPath("M2", "M3") || nrPath("M2", Output) || nrPath("M2", "M6") {
		t.Fatal("rsucc(M2) != {M3}")
	}
	// out(M6) = {M8}: rpred(M8) = {M6} only.
	if !nrPath("M6", "M8") || nrPath(Input, "M8") || nrPath("M3", "M8") {
		t.Fatal("rpred(M8) != {M6}")
	}
	// M7 is NOT in out(M6): reachable from both input and M6.
	if !(nrPath(Input, "M7") && nrPath("M6", "M7")) {
		t.Fatal("M7 must be nr-reachable from both input and M6")
	}
	// M1 not in in(M3): nr-paths from M1 to M3, M6 and output.
	if !(nrPath("M1", "M3") && nrPath("M1", "M6") && nrPath("M1", Output)) {
		t.Fatal("M1 must nr-reach M3, M6 and output")
	}
}

func TestFigure4Fixture(t *testing.T) {
	s, view, relevant := Figure4()
	if err := s.Validate(); err != nil {
		t.Fatalf("Figure 4 invalid: %v", err)
	}
	if len(view) != 2 || len(relevant) != 2 {
		t.Fatalf("unexpected fixture shape: %v %v", view, relevant)
	}
	// There must be no path r1 -> r2 (that is what makes the view bad).
	if s.Graph().HasPath("r1", "r2") {
		t.Fatal("fixture broken: r1 must not reach r2")
	}
	// And (r1, n2) must be on an nr-path r1 -> OUTPUT.
	rel := map[string]bool{"r1": true, "r2": true}
	if !s.Graph().EdgeOnPathAvoiding("r1", "n2", "r1", Output, func(n string) bool { return rel[n] }) {
		t.Fatal("fixture broken: (r1,n2) must lie on an nr-path r1->OUTPUT")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Phylogenomics()
	c := s.Clone()
	c.MustAddModule(Module{Name: "X"})
	c.MustAddEdge("M7", "X")
	if s.HasModule("X") || s.Graph().HasEdge("M7", "X") {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestFingerprintStability(t *testing.T) {
	a, b := Phylogenomics(), Phylogenomics()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical specs produced different fingerprints")
	}
	b.MustAddModule(Module{Name: "M9"})
	b.MustAddEdge("M7", "M9")
	b.MustAddEdge("M9", Output)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different specs share a fingerprint")
	}
}

func TestModuleAccessors(t *testing.T) {
	s := Phylogenomics()
	if !s.HasModule("M1") || s.HasModule("ghost") {
		t.Fatal("HasModule wrong")
	}
	mods := s.Modules()
	if len(mods) != 8 || mods[0].Name != "M1" {
		t.Fatalf("Modules = %v", mods)
	}
	if s.NumEdges() != 12 {
		t.Fatalf("NumEdges = %d, want 12", s.NumEdges())
	}
}
