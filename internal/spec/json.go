package spec

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/graph"
)

// specJSON is the wire form of a specification.
type specJSON struct {
	Name    string      `json:"name"`
	Modules []Module    `json:"modules"`
	Edges   [][2]string `json:"edges"`
}

// MarshalJSON encodes the specification canonically: modules sorted by
// name, edges sorted by (from, to). Canonical means the encoding is a pure
// function of the specification's value — two equal specs marshal to the
// same bytes no matter what order their modules and edges were added in,
// which is what makes snapshot round trips byte-stable.
func (s *Spec) MarshalJSON() ([]byte, error) {
	var doc specJSON
	doc.Name = s.name
	doc.Modules = s.Modules()
	for _, e := range s.g.Edges() {
		doc.Edges = append(doc.Edges, [2]string{e.From, e.To})
	}
	sort.Slice(doc.Edges, func(i, j int) bool {
		if doc.Edges[i][0] != doc.Edges[j][0] {
			return doc.Edges[i][0] < doc.Edges[j][0]
		}
		return doc.Edges[i][1] < doc.Edges[j][1]
	})
	return json.Marshal(doc)
}

// UnmarshalJSON decodes a specification, running the same checks as the
// programmatic builders.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var doc specJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("spec: decode: %w", err)
	}
	ns := New(doc.Name)
	for _, m := range doc.Modules {
		if err := ns.AddModule(m); err != nil {
			return err
		}
	}
	for _, e := range doc.Edges {
		if err := ns.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	*s = *ns
	return nil
}

// Decode parses and validates a specification from JSON.
func Decode(data []byte) (*Spec, error) {
	s := New("")
	if err := json.Unmarshal(data, s); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Encode serializes the specification to JSON.
func Encode(s *Spec) ([]byte, error) { return json.Marshal(s) }

// FromGraph builds a specification from an existing graph whose nodes are
// module names plus INPUT/OUTPUT. All modules default to KindScientific;
// kinds may be overridden via the kinds map.
func FromGraph(name string, g *graph.Graph, kinds map[string]Kind) (*Spec, error) {
	s := New(name)
	for _, n := range g.Nodes() {
		if n == Input || n == Output {
			continue
		}
		k := kinds[n]
		if err := s.AddModule(Module{Name: n, Kind: k}); err != nil {
			return nil, err
		}
	}
	var addErr error
	g.EachEdge(func(from, to string) {
		if addErr == nil {
			addErr = s.AddEdge(from, to)
		}
	})
	if addErr != nil {
		return nil, addErr
	}
	return s, nil
}
