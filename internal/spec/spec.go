// Package spec models workflow specifications as defined in Section II of
// the paper: a directed graph G_w(N, E) of uniquely labelled modules with
// two distinguished nodes, input (I) and output (O), such that every node
// lies on some path from input to output. Specifications may be cyclic —
// loops in the specification are unrolled during execution.
//
// Each module carries a Kind that records whether the module does real
// scientific work or mere data formatting; the workload generator uses this
// tag to mimic the paper's hand-picked "UBio" relevant-module selections,
// where biologists flagged the scientific modules and left the formatting
// ones to be absorbed into composites.
package spec

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Reserved node identifiers for the distinguished source and sink.
const (
	Input  = "INPUT"
	Output = "OUTPUT"
)

// Kind classifies a module's role in the experiment.
type Kind string

// Module kinds. Scientific modules are the natural candidates for relevance
// (alignment, tree building); Formatting modules shuffle data between tool
// formats; Interaction modules require user input (curation).
const (
	KindScientific  Kind = "scientific"
	KindFormatting  Kind = "formatting"
	KindInteraction Kind = "interaction"
)

// Module is a uniquely named task of the workflow.
type Module struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind,omitempty"`
	Desc string `json:"desc,omitempty"`
}

// Spec is a workflow specification. The zero value is unusable; use New.
type Spec struct {
	name    string
	modules map[string]Module
	g       *graph.Graph
}

// New returns an empty specification with the given name. The INPUT and
// OUTPUT nodes exist from the start.
func New(name string) *Spec {
	s := &Spec{
		name:    name,
		modules: make(map[string]Module),
		g:       graph.New(),
	}
	s.g.AddNode(Input)
	s.g.AddNode(Output)
	return s
}

// Name returns the specification's name.
func (s *Spec) Name() string { return s.name }

// AddModule registers a module. Module names must be unique and must not be
// the reserved INPUT/OUTPUT identifiers.
func (s *Spec) AddModule(m Module) error {
	if m.Name == "" {
		return fmt.Errorf("spec %q: %w: empty module name", s.name, ErrBadModule)
	}
	if m.Name == Input || m.Name == Output {
		return fmt.Errorf("spec %q: %w: %q is reserved", s.name, ErrBadModule, m.Name)
	}
	if _, dup := s.modules[m.Name]; dup {
		return fmt.Errorf("spec %q: %w: duplicate module %q", s.name, ErrBadModule, m.Name)
	}
	if m.Kind == "" {
		m.Kind = KindScientific
	}
	s.modules[m.Name] = m
	s.g.AddNode(m.Name)
	return nil
}

// MustAddModule is AddModule that panics on error; intended for literals in
// tests and examples where the input is statically known to be valid.
func (s *Spec) MustAddModule(m Module) {
	if err := s.AddModule(m); err != nil {
		panic(err)
	}
}

// AddEdge records that data may flow (and execution must precede) from one
// module to another. Both endpoints must already exist (or be INPUT/OUTPUT).
// Edges into INPUT or out of OUTPUT are rejected.
func (s *Spec) AddEdge(from, to string) error {
	if to == Input {
		return fmt.Errorf("spec %q: %w: edge into INPUT", s.name, ErrBadEdge)
	}
	if from == Output {
		return fmt.Errorf("spec %q: %w: edge out of OUTPUT", s.name, ErrBadEdge)
	}
	for _, end := range []string{from, to} {
		if end != Input && end != Output {
			if _, ok := s.modules[end]; !ok {
				return fmt.Errorf("spec %q: %w: unknown module %q", s.name, ErrBadEdge, end)
			}
		}
	}
	s.g.AddEdge(from, to)
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (s *Spec) MustAddEdge(from, to string) {
	if err := s.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// HasModule reports whether name is a module of the specification.
func (s *Spec) HasModule(name string) bool {
	_, ok := s.modules[name]
	return ok
}

// Module returns the module with the given name.
func (s *Spec) Module(name string) (Module, bool) {
	m, ok := s.modules[name]
	return m, ok
}

// ModuleNames returns all module names (excluding INPUT/OUTPUT), sorted.
func (s *Spec) ModuleNames() []string {
	out := make([]string, 0, len(s.modules))
	for name := range s.modules {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Modules returns all modules sorted by name.
func (s *Spec) Modules() []Module {
	names := s.ModuleNames()
	out := make([]Module, len(names))
	for i, n := range names {
		out[i] = s.modules[n]
	}
	return out
}

// NumModules returns the number of modules (excluding INPUT/OUTPUT).
func (s *Spec) NumModules() int { return len(s.modules) }

// NumEdges returns the number of edges, including those touching
// INPUT/OUTPUT.
func (s *Spec) NumEdges() int { return s.g.NumEdges() }

// Graph exposes the underlying graph, whose nodes are the module names plus
// INPUT and OUTPUT. The returned graph is shared with the Spec and must be
// treated as read-only; mutate the Spec through AddModule/AddEdge instead.
func (s *Spec) Graph() *graph.Graph { return s.g }

// Edges returns all specification edges in deterministic order.
func (s *Spec) Edges() []graph.Edge { return s.g.Edges() }

// Successors returns the successor modules of name (possibly OUTPUT).
func (s *Spec) Successors(name string) []string { return s.g.Successors(name) }

// Predecessors returns the predecessor modules of name (possibly INPUT).
func (s *Spec) Predecessors(name string) []string { return s.g.Predecessors(name) }

// ScientificModules returns the names of modules tagged KindScientific,
// sorted. The workload generator's UBio views mark exactly these relevant.
func (s *Spec) ScientificModules() []string {
	var out []string
	for name, m := range s.modules {
		if m.Kind == KindScientific {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the specification.
func (s *Spec) Clone() *Spec {
	c := &Spec{
		name:    s.name,
		modules: make(map[string]Module, len(s.modules)),
		g:       s.g.Clone(),
	}
	for k, v := range s.modules {
		c.modules[k] = v
	}
	return c
}

// String implements fmt.Stringer.
func (s *Spec) String() string {
	return fmt.Sprintf("spec %q: %d modules, %d edges", s.name, s.NumModules(), s.NumEdges())
}
