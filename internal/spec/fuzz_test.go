package spec

import "testing"

// FuzzDecode checks the specification decoder: it must never panic, and
// anything it accepts must be a valid specification that re-encodes and
// re-decodes to the same fingerprint.
func FuzzDecode(f *testing.F) {
	valid, _ := Encode(Phylogenomics())
	f.Add(string(valid))
	f.Add(`{"name":"x","modules":[{"name":"A"}],"edges":[["INPUT","A"],["A","OUTPUT"]]}`)
	f.Add(`{"name":"x","modules":[],"edges":[]}`)
	f.Add(`{"name":"x","modules":[{"name":"INPUT"}]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"name":"x","modules":[{"name":"A"},{"name":"A"}],"edges":[]}`)
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Decode([]byte(input))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid spec: %v", err)
		}
		data, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted spec failed to encode: %v", err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("re-encoded spec failed to decode: %v", err)
		}
		if back.Fingerprint() != s.Fingerprint() {
			t.Fatal("round trip changed the fingerprint")
		}
	})
}
