package spec

// This file encodes, module for module and edge for edge, the workflow
// specifications the paper uses as running examples. They serve as golden
// fixtures across the whole repository: the core package checks the
// RelevUserViewBuilder output against the views the paper derives by hand,
// and the provenance engine checks Joe's and Mary's query answers.

// Phylogenomics returns the Figure 1 workflow: phylogenomic inference of
// protein biological function.
//
//	INPUT -> M1 (format entries)
//	M1 -> M2 (annotations checking, interaction), M1 -> M3 (run alignment)
//	M3 -> M4 (format alignment); M4 -> M5 (rectify alignment); M5 -> M3 (loop)
//	M4 -> M7 (build phylo tree)
//	M2 -> M8 (format annotations); M8 -> M7
//	M2 -> M6 (format lab annotations); M6 -> M7
//	M7 -> OUTPUT
//
// Section II states that with R = {M2, M3, M7} there is an nr-path from
// input to M2 but *not* from input to M7 — every input-to-M7 path passes
// through M2 or M3. M6 therefore cannot hang directly off INPUT; the lab
// annotations it formats arrive as user input at run time (the paper's
// provenance model explicitly covers data "input to the workflow execution
// by a user"), while its control/data dependency in the specification is on
// the curated annotations of M2.
func Phylogenomics() *Spec {
	s := New("phylogenomics")
	s.MustAddModule(Module{Name: "M1", Kind: KindFormatting, Desc: "format database entries"})
	s.MustAddModule(Module{Name: "M2", Kind: KindInteraction, Desc: "annotations checking"})
	s.MustAddModule(Module{Name: "M3", Kind: KindScientific, Desc: "run alignment"})
	s.MustAddModule(Module{Name: "M4", Kind: KindFormatting, Desc: "format alignment"})
	s.MustAddModule(Module{Name: "M5", Kind: KindInteraction, Desc: "rectify alignment"})
	s.MustAddModule(Module{Name: "M6", Kind: KindFormatting, Desc: "format lab annotations"})
	s.MustAddModule(Module{Name: "M7", Kind: KindScientific, Desc: "build phylogenetic tree"})
	s.MustAddModule(Module{Name: "M8", Kind: KindFormatting, Desc: "format annotations"})
	for _, e := range [][2]string{
		{Input, "M1"},
		{"M1", "M2"}, {"M1", "M3"},
		{"M3", "M4"}, {"M4", "M5"}, {"M5", "M3"},
		{"M4", "M7"},
		{"M2", "M8"}, {"M8", "M7"},
		{"M2", "M6"}, {"M6", "M7"},
		{"M7", Output},
	} {
		s.MustAddEdge(e[0], e[1])
	}
	return s
}

// PhyloRelevantJoe returns the modules Joe flags relevant in Section I:
// annotations checking (M2), run alignment (M3), build phylo tree (M7).
func PhyloRelevantJoe() []string { return []string{"M2", "M3", "M7"} }

// PhyloRelevantMary returns Mary's relevant modules: Joe's plus the
// alignment-rectification step M5.
func PhyloRelevantMary() []string { return []string{"M2", "M3", "M5", "M7"} }

// Figure4 returns the counter-example workflow of Figure 4 used to
// illustrate violations of Properties 2 and 3:
//
//	INPUT -> r1 -> n2 -> OUTPUT
//	INPUT -> n1 -> r2 -> OUTPUT
//	n1 -> n2, and r2 reachable only through n1
//
// with the ill-formed view U = {{r1, n1}, {r2, n2}}. The exact figure is
// partially occluded in the text; this reconstruction reproduces both
// violations the paper derives from it: the edge (n1, r2) induces
// (C(r1), C(r2)) although there is no path r1 -> r2, and the edge (r1, n2)
// is on an nr-path from r1 to OUTPUT while its induced edge is not.
func Figure4() (*Spec, [][]string, []string) {
	s := New("figure4")
	for _, name := range []string{"r1", "r2", "n1", "n2"} {
		s.MustAddModule(Module{Name: name})
	}
	for _, e := range [][2]string{
		{Input, "r1"}, {Input, "n1"},
		{"r1", "n2"},
		{"n1", "n2"}, {"n1", "r2"},
		{"n2", Output}, {"r2", Output},
	} {
		s.MustAddEdge(e[0], e[1])
	}
	view := [][]string{{"r1", "n1"}, {"r2", "n2"}}
	relevant := []string{"r1", "r2"}
	return s, view, relevant
}

// Figure6 returns the Figure 6 example used to walk through the three steps
// of RelevUserViewBuilder:
//
//	I -> M1, I -> M2, I -> M7
//	M1 -> M4, M1 -> M5, M1 -> M6
//	M2 -> M3; M4 -> M3; M5 -> M3
//	M6 -> M8; M6 -> M7
//	M3 -> O; M4 -> O; M5 -> O; M7 -> O; M8 -> O
//
// The figure itself is a small sketch; this encoding is chosen so that every
// rpred/rsucc value and every Step 3 merge fact the paper states in
// Section III holds (V-({M1,M4,M5}) = {M1}, V+ = {M1,M4,M5}, the merge of
// {M1} with {M4,M5} is legal, and merging the result with {M7} is not):
//
//	in(M3) = {M2}; out(M6) = {M8}
//	rpred(M4)=rpred(M5)={input}, rsucc(M4)=rsucc(M5)={M3, output}
//	rpred(M1)={input}, rsucc(M1)={M3, M6, output}
//	rpred(M7)={input, M6}, rsucc(M7)={output}
//
// Relevant modules are R = {M3, M6}.
func Figure6() (*Spec, []string) {
	s := New("figure6")
	for i := 1; i <= 8; i++ {
		s.MustAddModule(Module{Name: moduleName(i)})
	}
	for _, e := range [][2]string{
		{Input, "M1"}, {Input, "M2"}, {Input, "M7"},
		{"M1", "M4"}, {"M1", "M5"}, {"M1", "M6"},
		{"M2", "M3"},
		{"M4", "M3"}, {"M4", Output},
		{"M5", "M3"}, {"M5", Output},
		{"M6", "M8"}, {"M6", "M7"},
		{"M3", Output}, {"M7", Output}, {"M8", Output},
	} {
		s.MustAddEdge(e[0], e[1])
	}
	return s, []string{"M3", "M6"}
}

// Figure7 returns an instance demonstrating the Figure 7 phenomenon: the
// algorithm's output is minimal (no pairwise merge is possible) yet not
// minimum. The paper's own figure is occluded in the text, so this is a
// machine-found instance with the same property: RelevUserViewBuilder
// produces a view of size 5 ({n0}, {n3}, {n1}, {n2}, {n4} — the three
// non-relevant modules have pairwise-different rpred/rsucc signatures and
// no Step 3 merge is legal), while the exhaustive search of core.MinimumView
// finds the size-3 view {n0}, {n3}, {n1, n2, n4} that satisfies Properties
// 1-3. The relevant modules are {n0, n3}.
func Figure7() (*Spec, []string) {
	s := New("figure7")
	for _, name := range []string{"n0", "n1", "n2", "n3", "n4"} {
		s.MustAddModule(Module{Name: name})
	}
	for _, e := range [][2]string{
		{Input, "n0"}, {Input, "n1"}, {Input, "n2"},
		{"n0", "n2"}, {"n0", "n3"},
		{"n1", "n2"}, {"n1", "n4"},
		{"n2", "n3"}, {"n2", "n4"},
		{"n3", Output}, {"n4", Output},
	} {
		s.MustAddEdge(e[0], e[1])
	}
	return s, []string{"n0", "n3"}
}

func moduleName(i int) string {
	return "M" + string(rune('0'+i))
}
