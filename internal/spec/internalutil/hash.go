// Package internalutil holds tiny helpers shared by the spec package family
// that do not belong in any public surface.
package internalutil

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
)

// Hasher accumulates strings into a short hex digest.
type Hasher struct {
	h hash.Hash
}

// NewHasher returns an empty Hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

// WriteString feeds s into the digest.
func (h *Hasher) WriteString(s string) {
	_, _ = h.h.Write([]byte(s))
}

// Sum returns the first 16 hex characters of the digest — short enough to
// embed in identifiers, long enough to make accidental collisions unlikely.
func (h *Hasher) Sum() string {
	return hex.EncodeToString(h.h.Sum(nil))[:16]
}
