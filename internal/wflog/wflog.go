// Package wflog models the execution log a workflow system emits while
// running a workflow — the raw material of provenance. Following Section II
// of the paper, the log records, per step: the module the step is an
// instance of, which data objects the step read, and which it wrote. From
// this information alone the immediate provenance of every data object can
// be reconstructed, which is all the ZOOM approach requires of the host
// workflow system.
//
// Events are serialized as JSON lines so that logs can be streamed, appended
// to, and replayed.
package wflog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Kind discriminates log event types.
type Kind string

// Event kinds.
const (
	// KindStart records that a step began executing and names its module.
	KindStart Kind = "start"
	// KindRead records that a step read one data object.
	KindRead Kind = "read"
	// KindWrite records that a step wrote (produced) one data object.
	KindWrite Kind = "write"
)

// Event is one log record. Seq is a monotonically increasing sequence
// number standing in for the wall-clock timestamps real systems record.
type Event struct {
	Seq    int64  `json:"seq"`
	Kind   Kind   `json:"kind"`
	Step   string `json:"step"`
	Module string `json:"module,omitempty"` // only on start events
	Data   string `json:"data,omitempty"`   // only on read/write events
}

// Validation errors.
var (
	ErrBadEvent   = errors.New("wflog: malformed event")
	ErrOutOfOrder = errors.New("wflog: events out of order")
	// ErrLineTooLong reports a log line exceeding MaxLineBytes. It wraps the
	// scanner's bufio.ErrTooLong with the offending line number so operators
	// can find the bad record instead of guessing from a bare "token too
	// long".
	ErrLineTooLong = errors.New("wflog: line too long")
)

// MaxLineBytes is the largest JSON-lines record the reader accepts. A single
// event is tiny; the cap only exists so a corrupt (newline-free) file cannot
// buffer without bound.
const MaxLineBytes = 16 * 1024 * 1024

// Validate checks a single event's internal consistency.
func (e Event) Validate() error {
	switch e.Kind {
	case KindStart:
		if e.Module == "" {
			return fmt.Errorf("%w: start event for step %q without module", ErrBadEvent, e.Step)
		}
		if e.Data != "" {
			return fmt.Errorf("%w: start event for step %q carries data", ErrBadEvent, e.Step)
		}
	case KindRead, KindWrite:
		if e.Data == "" {
			return fmt.Errorf("%w: %s event for step %q without data", ErrBadEvent, e.Kind, e.Step)
		}
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrBadEvent, e.Kind)
	}
	if e.Step == "" {
		return fmt.Errorf("%w: event without step", ErrBadEvent)
	}
	return nil
}

// ValidateSequence checks a whole log: per-event validity, strictly
// increasing sequence numbers, and that every step's start event precedes
// its reads and writes.
func ValidateSequence(events []Event) error {
	started := make(map[string]bool)
	var lastSeq int64 = -1
	for i, e := range events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		if e.Seq <= lastSeq {
			return fmt.Errorf("event %d: seq %d after %d: %w", i, e.Seq, lastSeq, ErrOutOfOrder)
		}
		lastSeq = e.Seq
		switch e.Kind {
		case KindStart:
			if started[e.Step] {
				return fmt.Errorf("event %d: duplicate start for step %q: %w", i, e.Step, ErrBadEvent)
			}
			started[e.Step] = true
		default:
			if !started[e.Step] {
				return fmt.Errorf("event %d: %s before start of step %q: %w", i, e.Kind, e.Step, ErrOutOfOrder)
			}
		}
	}
	return nil
}

// Write serializes events as JSON lines.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("wflog: encode event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSON-lines log. It stops at EOF and rejects malformed lines.
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	dec := NewDecoder(r)
	for dec.Next() {
		out = append(out, dec.Event())
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Decoder reads a JSON-lines log one event at a time, so large logs can be
// ingested without materializing an []Event slice — the streaming half of
// the warehouse's LoadLogReader path.
//
//	dec := wflog.NewDecoder(f)
//	for dec.Next() {
//	    handle(dec.Event())
//	}
//	if err := dec.Err(); err != nil { ... }
type Decoder struct {
	sc   *bufio.Scanner
	line int
	e    Event
	err  error
}

// NewDecoder returns a decoder over a JSON-lines log.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLineBytes)
	return &Decoder{sc: sc}
}

// Next advances to the next event, skipping blank lines. It returns false at
// end of input or on the first error; Err distinguishes the two.
func (d *Decoder) Next() bool {
	if d.err != nil {
		return false
	}
	for d.sc.Scan() {
		d.line++
		text := d.sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(text, &e); err != nil {
			d.err = fmt.Errorf("wflog: line %d: %w", d.line, err)
			return false
		}
		d.e = e
		return true
	}
	if err := d.sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The scanner dies on the line after the last one it returned.
			d.err = fmt.Errorf("%w: line %d exceeds %d bytes", ErrLineTooLong, d.line+1, MaxLineBytes)
		} else {
			d.err = fmt.Errorf("wflog: scan: %w", err)
		}
	}
	return false
}

// Event returns the event read by the last successful Next.
func (d *Decoder) Event() Event { return d.e }

// Line returns the line number of the last event returned.
func (d *Decoder) Line() int { return d.line }

// Err returns the first decoding error, or nil on clean end of input.
func (d *Decoder) Err() error { return d.err }

// Builder incrementally assembles a valid log, assigning sequence numbers.
type Builder struct {
	events []Event
	seq    int64
}

// NewBuilder returns an empty log builder.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) emit(e Event) {
	b.seq++
	e.Seq = b.seq
	b.events = append(b.events, e)
}

// Start records the start of a step.
func (b *Builder) Start(step, module string) {
	b.emit(Event{Kind: KindStart, Step: step, Module: module})
}

// Reads records that step read each of the given data objects.
func (b *Builder) Reads(step string, data ...string) {
	for _, d := range data {
		b.emit(Event{Kind: KindRead, Step: step, Data: d})
	}
}

// Writes records that step wrote each of the given data objects.
func (b *Builder) Writes(step string, data ...string) {
	for _, d := range data {
		b.emit(Event{Kind: KindWrite, Step: step, Data: d})
	}
}

// Events returns the accumulated log. The slice is shared; callers must not
// mutate it while continuing to use the builder.
func (b *Builder) Events() []Event { return b.events }

// Len returns the number of events recorded so far.
func (b *Builder) Len() int { return len(b.events) }
