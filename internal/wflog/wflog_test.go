package wflog

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleLog() []Event {
	b := NewBuilder()
	b.Start("S1", "M1")
	b.Reads("S1", "d1", "d2")
	b.Writes("S1", "d3")
	b.Start("S2", "M2")
	b.Reads("S2", "d3")
	b.Writes("S2", "d4")
	return b.Events()
}

func TestBuilderSequencing(t *testing.T) {
	events := sampleLog()
	if err := ValidateSequence(events); err != nil {
		t.Fatalf("builder produced invalid log: %v", err)
	}
	if len(events) != 7 {
		t.Fatalf("len = %d, want 7", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatal("sequence numbers not strictly increasing")
		}
	}
}

func TestEventValidate(t *testing.T) {
	cases := []struct {
		name string
		e    Event
	}{
		{"start without module", Event{Kind: KindStart, Step: "S1"}},
		{"start with data", Event{Kind: KindStart, Step: "S1", Module: "M", Data: "d1"}},
		{"read without data", Event{Kind: KindRead, Step: "S1"}},
		{"write without data", Event{Kind: KindWrite, Step: "S1"}},
		{"unknown kind", Event{Kind: "boom", Step: "S1"}},
		{"missing step", Event{Kind: KindRead, Data: "d1"}},
	}
	for _, tc := range cases {
		if err := tc.e.Validate(); !errors.Is(err, ErrBadEvent) {
			t.Errorf("%s: err = %v, want ErrBadEvent", tc.name, err)
		}
	}
	good := Event{Seq: 1, Kind: KindStart, Step: "S1", Module: "M1"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid event rejected: %v", err)
	}
}

func TestValidateSequenceOrdering(t *testing.T) {
	readBeforeStart := []Event{
		{Seq: 1, Kind: KindRead, Step: "S1", Data: "d1"},
	}
	if err := ValidateSequence(readBeforeStart); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("read before start: %v", err)
	}
	dupStart := []Event{
		{Seq: 1, Kind: KindStart, Step: "S1", Module: "M"},
		{Seq: 2, Kind: KindStart, Step: "S1", Module: "M"},
	}
	if err := ValidateSequence(dupStart); !errors.Is(err, ErrBadEvent) {
		t.Fatalf("duplicate start: %v", err)
	}
	nonMonotone := []Event{
		{Seq: 5, Kind: KindStart, Step: "S1", Module: "M"},
		{Seq: 5, Kind: KindWrite, Step: "S1", Data: "d1"},
	}
	if err := ValidateSequence(nonMonotone); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("non-monotone seq: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	events := sampleLog()
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, events) {
		t.Fatalf("round trip mismatch:\n%v\n%v", back, events)
	}
}

func TestReadSkipsBlankLinesRejectsGarbage(t *testing.T) {
	in := strings.NewReader("\n" + `{"seq":1,"kind":"start","step":"S1","module":"M"}` + "\n\n")
	events, err := Read(in)
	if err != nil || len(events) != 1 {
		t.Fatalf("events=%v err=%v", events, err)
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
}

// Property: any log assembled via the Builder validates, regardless of the
// interleaving of reads and writes after each start.
func TestBuilderAlwaysValidQuick(t *testing.T) {
	f := func(stepCount uint8, ops []bool) bool {
		b := NewBuilder()
		n := int(stepCount)%5 + 1
		for s := 0; s < n; s++ {
			step := "S" + string(rune('0'+s))
			b.Start(step, "M")
			for i, op := range ops {
				d := "d" + string(rune('0'+i%10))
				if op {
					b.Reads(step, d)
				} else {
					b.Writes(step, d)
				}
			}
		}
		return ValidateSequence(b.Events()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
