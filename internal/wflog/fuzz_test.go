package wflog

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that the log reader never panics and that anything it
// accepts round-trips through Write and Read unchanged. Run with
// `go test -fuzz FuzzRead ./internal/wflog` for a real campaign; the seed
// corpus runs as a normal unit test.
func FuzzRead(f *testing.F) {
	f.Add(`{"seq":1,"kind":"start","step":"S1","module":"M"}`)
	f.Add(`{"seq":1,"kind":"read","step":"S1","data":"d1"}` + "\n" + `{"seq":2,"kind":"write","step":"S1","data":"d2"}`)
	f.Add("")
	f.Add("\n\n\n")
	f.Add(`{"seq":-1}`)
	f.Add(`not json at all`)
	f.Add(`{"seq":1,"kind":"start","step":"S1","module":"M"}` + "\nbroken")
	f.Fuzz(func(t *testing.T, input string) {
		events, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, events); err != nil {
			t.Fatalf("accepted log failed to encode: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-encoded log failed to parse: %v", err)
		}
		if len(back) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(back))
		}
	})
}
