//go:build !linux && !darwin

package mmapfile

import (
	"io"
	"os"
)

// mapFile on platforms without the mmap path reads the file onto the heap.
// Same accessors, no zero-copy — Mapped reports false so callers can tell.
func mapFile(f *os.File, size int) (data []byte, mapped bool, err error) {
	data = make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

func unmapFile([]byte) error { return nil }
