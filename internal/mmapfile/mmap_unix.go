//go:build linux || darwin

package mmapfile

import (
	"os"
	"syscall"
)

// mapFile maps fd read-only and shared: the kernel serves the bytes from
// the page cache, and concurrent opens of the same snapshot share physical
// memory.
func mapFile(f *os.File, size int) (data []byte, mapped bool, err error) {
	data, err = syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
