package mmapfile

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	want := bytes.Repeat([]byte("zoom-v3 "), 1000)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Bytes(), want) {
		t.Fatalf("contents mismatch: got %d bytes", f.Len())
	}
	if runtime.GOOS == "linux" || runtime.GOOS == "darwin" {
		if !f.Mapped() {
			t.Error("expected an mmap region on this platform")
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if f.Bytes() != nil {
		t.Error("Bytes must be nil after Close")
	}
}

func TestOpenEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 || f.Mapped() {
		t.Errorf("empty file: len=%d mapped=%v, want 0 and false", f.Len(), f.Mapped())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected an error for a missing file")
	}
}
