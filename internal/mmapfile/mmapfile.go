// Package mmapfile memory-maps whole files read-only. On linux and darwin
// Open maps the file with mmap(2) (PROT_READ, MAP_SHARED), so the returned
// bytes are served straight from the page cache — opening a multi-gigabyte
// snapshot costs a few page faults, not a copy. On every other platform (and
// for zero-length files, which mmap rejects) Open falls back to reading the
// file onto the heap; callers see the same API either way and can check
// Mapped to report which path they got.
//
// The returned bytes MUST be treated as read-only: the mapping is shared,
// so a write would hit the file (or fault). Close unmaps; any access to the
// byte slice after Close faults, which is why the warehouse gates every
// query on its closed flag before touching mapped memory.
package mmapfile

import (
	"fmt"
	"os"
	"sync"
)

// File is an open read-only file image: either an mmap region or a heap
// copy.
type File struct {
	mu     sync.Mutex
	data   []byte
	mapped bool
	closed bool
}

// Open returns the file's contents as a read-only byte slice, memory-mapped
// where the platform supports it.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return &File{data: []byte{}}, nil
	}
	if int64(int(size)) != size || size < 0 {
		return nil, fmt.Errorf("mmapfile: %s: size %d out of range", path, size)
	}
	data, mapped, err := mapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("mmapfile: %s: %w", path, err)
	}
	return &File{data: data, mapped: mapped}, nil
}

// Bytes returns the file contents. The slice aliases the mapping (or the
// heap copy) and is invalidated by Close.
func (f *File) Bytes() []byte { return f.data }

// Len returns the file size in bytes.
func (f *File) Len() int { return len(f.data) }

// Mapped reports whether the contents are an mmap region (false on the
// heap-read fallback).
func (f *File) Mapped() bool { return f.mapped }

// Close releases the mapping (or the heap copy). It is idempotent; the
// bytes returned by Bytes must not be touched afterwards.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	data, mapped := f.data, f.mapped
	f.data, f.mapped = nil, false
	if mapped {
		return unmapFile(data)
	}
	return nil
}
