// Package xxh is a dependency-free implementation of the XXH64 hash
// (Yann Collet's xxHash, 64-bit variant, seed 0) used to checksum the
// sections of the v3 snapshot format. XXH64 is not cryptographic; it is
// the standard fast integrity check for memory-mapped file formats —
// corruption detection, not tamper-proofing. The implementation is the
// reference algorithm specialized to one-shot hashing of an in-memory
// slice, which is the only shape snapshot verification needs.
package xxh

import "encoding/binary"

const (
	prime1 uint64 = 11400714785074694791
	prime2 uint64 = 14029467366897019727
	prime3 uint64 = 1609587929392839161
	prime4 uint64 = 9650029242287828579
	prime5 uint64 = 2870177450012600261
)

// Sum64 returns the XXH64 hash of b with seed 0.
func Sum64(b []byte) uint64 {
	n := uint64(len(b))
	var h uint64
	if len(b) >= 32 {
		v1 := prime1
		v1 += prime2
		v2 := prime2
		v3 := uint64(0)
		v4 := ^prime1 + 1
		for len(b) >= 32 {
			v1 = round(v1, binary.LittleEndian.Uint64(b[0:8]))
			v2 = round(v2, binary.LittleEndian.Uint64(b[8:16]))
			v3 = round(v3, binary.LittleEndian.Uint64(b[16:24]))
			v4 = round(v4, binary.LittleEndian.Uint64(b[24:32]))
			b = b[32:]
		}
		h = rol(v1, 1) + rol(v2, 7) + rol(v3, 12) + rol(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = prime5
	}
	h += n
	for len(b) >= 8 {
		h ^= round(0, binary.LittleEndian.Uint64(b[:8]))
		h = rol(h, 27)*prime1 + prime4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(b[:4])) * prime1
		h = rol(h, 23)*prime2 + prime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime5
		h = rol(h, 11) * prime1
	}
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

func round(acc, input uint64) uint64 {
	acc += input * prime2
	acc = rol(acc, 31)
	acc *= prime1
	return acc
}

func mergeRound(acc, val uint64) uint64 {
	val = round(0, val)
	acc ^= val
	acc = acc*prime1 + prime4
	return acc
}

func rol(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }
