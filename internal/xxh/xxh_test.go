package xxh

import "testing"

// The short vectors are the classic XXH64 seed-0 values quoted across
// reference implementations; the 38-byte vector exercises the 32-byte main
// loop. Together they pin every branch of Sum64 (stripe loop, 8/4/1-byte
// tails) to the reference algorithm.
func TestSum64Vectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xef46db3751d8e999},
		{"a", 0xd24ec4f1a98c6e5b},
		{"abc", 0x44bc2cf5ad770999},
		{"Nobody inspects the spammish repetition", 0xfbcea83c8a378bf1},
	}
	for _, c := range cases {
		if got := Sum64([]byte(c.in)); got != c.want {
			t.Errorf("Sum64(%q) = %#016x, want %#016x", c.in, got, c.want)
		}
	}
}

// Every single-bit flip of a buffer long enough to take the stripe loop
// must change the hash — the property snapshot checksumming relies on.
func TestSum64BitFlipSensitivity(t *testing.T) {
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	base := Sum64(buf)
	for i := 0; i < len(buf); i++ {
		for bit := 0; bit < 8; bit++ {
			buf[i] ^= 1 << bit
			if Sum64(buf) == base {
				t.Fatalf("flipping byte %d bit %d left the hash unchanged", i, bit)
			}
			buf[i] ^= 1 << bit
		}
	}
	if Sum64(buf) != base {
		t.Fatal("buffer restoration changed the hash")
	}
}

// All tail lengths 0..64 hash deterministically and distinctly for
// distinct prefixes of one buffer.
func TestSum64Lengths(t *testing.T) {
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i)
	}
	seen := make(map[uint64]int)
	for n := 0; n <= len(buf); n++ {
		h := Sum64(buf[:n])
		if h != Sum64(buf[:n]) {
			t.Fatalf("len %d: non-deterministic", n)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("len %d collides with len %d", n, prev)
		}
		seen[h] = n
	}
}
