package gen

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/wflog"
)

func TestClassesShape(t *testing.T) {
	classes := Classes()
	if len(classes) != 4 {
		t.Fatalf("%d classes, want 4", len(classes))
	}
	for _, c := range classes {
		total := 0
		for _, f := range c.Freq {
			total += f
		}
		if total != 100 {
			t.Errorf("%s frequencies sum to %d", c.Name, total)
		}
	}
	// Table I: Class2 is Sequence 80 / Loop 10 / ParallelProcess 10.
	c2 := Class2()
	if c2.Freq[Sequence] != 80 || c2.Freq[Loop] != 10 || c2.Freq[ParallelProcess] != 10 {
		t.Fatalf("Class2 profile wrong: %v", c2.Freq)
	}
	// Class4 is Loop 50 / Sequence 50.
	c4 := Class4()
	if c4.Freq[Loop] != 50 || c4.Freq[Sequence] != 50 {
		t.Fatalf("Class4 profile wrong: %v", c4.Freq)
	}
	// Class1 reflects the real-workflow statistics: ~12 modules, sequence
	// several times more frequent than loop.
	c1 := Class1()
	if c1.TargetModules != 12 {
		t.Fatalf("Class1 target = %d, want 12", c1.TargetModules)
	}
	if c1.Freq[Sequence] < 4*c1.Freq[Loop] {
		t.Fatal("Class1 must use sequence at least 4x more than loop")
	}
}

func TestWorkflowsValidAcrossClasses(t *testing.T) {
	g := NewGenerator(1)
	for _, class := range Classes() {
		for i := 0; i < 10; i++ {
			s := g.Workflow(class, fmt.Sprintf("%s-%d", class.Name, i))
			if err := s.Validate(); err != nil {
				t.Fatalf("%s workflow %d invalid: %v", class.Name, i, err)
			}
			if s.NumModules() < class.TargetModules {
				t.Fatalf("%s workflow %d has %d modules, want >= %d",
					class.Name, i, s.NumModules(), class.TargetModules)
			}
			// Size should not wildly overshoot (patterns add at most ~4).
			if s.NumModules() > class.TargetModules+6 {
				t.Fatalf("%s workflow %d has %d modules, target %d",
					class.Name, i, s.NumModules(), class.TargetModules)
			}
		}
	}
}

func TestClass4HasLoopsClass3HasParallelism(t *testing.T) {
	g := NewGenerator(7)
	loops := 0
	for i := 0; i < 10; i++ {
		s := g.Workflow(Class4(), fmt.Sprintf("c4-%d", i))
		loops += s.LoopCount()
	}
	if loops < 10 {
		t.Fatalf("Class4 generated only %d loops across 10 workflows", loops)
	}
	// Class3 should fan out: some module has out-degree >= 2.
	fan := false
	for i := 0; i < 10 && !fan; i++ {
		s := g.Workflow(Class3(), fmt.Sprintf("c3-%d", i))
		for _, m := range s.ModuleNames() {
			if s.Graph().OutDegree(m) >= 2 {
				fan = true
				break
			}
		}
	}
	if !fan {
		t.Fatal("Class3 produced no parallel branches")
	}
}

func TestGeneratedRunsExecuteAndReplay(t *testing.T) {
	g := NewGenerator(3)
	for _, class := range Classes() {
		s := g.Workflow(class, class.Name+"-w")
		r, events, err := g.Run(s, Small(), class.Name+"-r")
		if err != nil {
			t.Fatalf("%s: %v", class.Name, err)
		}
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := r.ConformsTo(s); err != nil {
			t.Fatal(err)
		}
		if err := wflog.ValidateSequence(events); err != nil {
			t.Fatal(err)
		}
		back, err := run.FromLog(r.ID(), s.Name(), events)
		if err != nil {
			t.Fatal(err)
		}
		if back.NumSteps() != r.NumSteps() || back.NumData() != r.NumData() {
			t.Fatalf("%s: replay mismatch", class.Name)
		}
	}
}

func TestRunClassesScale(t *testing.T) {
	g := NewGenerator(11)
	s := g.Workflow(Class4(), "scale-w") // loops dominate size
	sizes := make(map[string]int)
	for _, rc := range RunClasses() {
		r, _, err := g.Run(s, rc, "scale-"+rc.Name)
		if err != nil {
			t.Fatal(err)
		}
		sizes[rc.Name] = r.NumSteps()
		if r.NumSteps() > rc.MaxNodes+s.NumModules() {
			t.Fatalf("%s run exceeded cap: %d steps", rc.Name, r.NumSteps())
		}
	}
	if !(sizes["small"] < sizes["medium"] && sizes["medium"] < sizes["large"]) {
		t.Fatalf("run sizes not increasing: %v", sizes)
	}
}

func TestRandomRelevantPercentages(t *testing.T) {
	g := NewGenerator(5)
	s := g.Workflow(Class2(), "rel-w")
	n := s.NumModules()
	if got := g.RandomRelevant(s, 0); len(got) != 0 {
		t.Fatalf("0%% -> %v", got)
	}
	if got := g.RandomRelevant(s, 100); len(got) != n {
		t.Fatalf("100%% -> %d of %d", len(got), n)
	}
	got := g.RandomRelevant(s, 50)
	if len(got) != n/2 {
		t.Fatalf("50%% -> %d of %d", len(got), n)
	}
	seen := make(map[string]bool)
	for _, m := range got {
		if !s.HasModule(m) {
			t.Fatalf("unknown module %s", m)
		}
		if seen[m] {
			t.Fatalf("duplicate module %s", m)
		}
		seen[m] = true
	}
}

func TestUBioRelevant(t *testing.T) {
	g := NewGenerator(9)
	s := g.Workflow(Class2(), "ubio-w")
	rel := UBioRelevant(s)
	for _, m := range rel {
		mod, _ := s.Module(m)
		if mod.Kind != spec.KindScientific {
			t.Fatalf("UBio selected non-scientific module %s", m)
		}
	}
	// Views built from UBio selections must satisfy the theorem.
	v, err := core.BuildRelevant(s, rel)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.CheckAll(v, rel); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(42).Workflow(Class3(), "d")
	b := NewGenerator(42).Workflow(Class3(), "d")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same seed produced different workflows")
	}
	c := NewGenerator(43).Workflow(Class3(), "d")
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced identical workflows")
	}
}

func TestBuilderViewsOverGeneratedWorkflows(t *testing.T) {
	// End-to-end sanity: the view builder handles every generated shape.
	g := NewGenerator(17)
	for _, class := range Classes() {
		for i := 0; i < 5; i++ {
			s := g.Workflow(class, fmt.Sprintf("%s-v%d", class.Name, i))
			for _, pct := range []int{0, 30, 60, 100} {
				rel := g.RandomRelevant(s, pct)
				v, err := core.BuildRelevant(s, rel)
				if err != nil {
					t.Fatalf("%s pct %d: %v", class.Name, pct, err)
				}
				if err := core.CheckAll(v, rel); err != nil {
					t.Fatalf("%s pct %d: %v", class.Name, pct, err)
				}
			}
		}
	}
}

func TestRandomDAG(t *testing.T) {
	g := NewGenerator(21)
	for _, n := range []int{1, 4, 8} {
		s := g.RandomDAG(fmt.Sprintf("dag-%d", n), n)
		if err := s.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if s.NumModules() != n {
			t.Fatalf("n=%d: got %d modules", n, s.NumModules())
		}
		if !s.IsAcyclic() {
			t.Fatalf("n=%d: RandomDAG produced a cycle", n)
		}
	}
	a := NewGenerator(5).RandomDAG("d", 6)
	b := NewGenerator(5).RandomDAG("d", 6)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("RandomDAG not deterministic")
	}
}
