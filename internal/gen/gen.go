// Package gen generates the synthetic workloads of the paper's evaluation
// (Section V.A). The paper collected thirty real scientific workflows,
// extracted workflow patterns (sequence, loop, parallel process, parallel
// input, synchronization) and usage statistics, and generated simulated
// workflows by combining patterns according to those statistics, plus runs
// whose complexity is controlled by the amount of user input, the data
// produced per step, and the number of loop iterations (Tables I and II).
//
// The real corpus is not public; what the paper publishes is its
// statistics, which is exactly what this generator consumes — Class 1
// reproduces the reported real-workflow profile (≈12-node average, mostly
// linear, sequences ≈4x more frequent than reflexive loops), Classes 2-4
// are the synthetic profiles of Table I verbatim.
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/wflog"
)

// Pattern is a workflow pattern from the workflow-patterns initiative, as
// used in Table I.
type Pattern string

// The patterns of Table I.
const (
	Sequence        Pattern = "sequence"
	Loop            Pattern = "loop"
	ParallelProcess Pattern = "parallel-process"
	ParallelInput   Pattern = "parallel-input"
	Synchronization Pattern = "synchronization"
)

// WorkflowClass describes one row of Table I: a pattern-frequency profile
// plus a target size.
type WorkflowClass struct {
	// Name identifies the class (Class1..Class4).
	Name string
	// Freq maps each pattern to its percentage. Percentages sum to 100.
	Freq map[Pattern]int
	// TargetModules is the approximate number of modules to generate.
	TargetModules int
	// ScientificPct is the probability (percent) that a generated module is
	// tagged scientific; UBio views mark scientific modules relevant. The
	// paper's real workflows are dominated by formatting tasks.
	ScientificPct int
}

// Table I: classes of workflows. Class 1 models the collected real
// workflows (12-node average, mostly linear); Classes 2-4 are the synthetic
// profiles stated in the table.
func Class1() WorkflowClass {
	return WorkflowClass{
		Name: "Class1",
		Freq: map[Pattern]int{
			Sequence: 75, Loop: 10, ParallelProcess: 5, ParallelInput: 5, Synchronization: 5,
		},
		TargetModules: 12,
		ScientificPct: 25,
	}
}

// Class2 is the "Linear" profile: Sequence 80%, Loop 10%, Parallel Process 10%.
func Class2() WorkflowClass {
	return WorkflowClass{
		Name:          "Class2",
		Freq:          map[Pattern]int{Sequence: 80, Loop: 10, ParallelProcess: 10},
		TargetModules: 20,
		ScientificPct: 25,
	}
}

// Class3 is the "Parallel" profile: Parallel Process 20%, Parallel Input
// 10%, Synchronization 20%, Sequence 50%.
func Class3() WorkflowClass {
	return WorkflowClass{
		Name: "Class3",
		Freq: map[Pattern]int{
			ParallelProcess: 20, ParallelInput: 10, Synchronization: 20, Sequence: 50,
		},
		TargetModules: 20,
		ScientificPct: 25,
	}
}

// Class4 is the "Loop" profile: Loop 50%, Sequence 50%.
func Class4() WorkflowClass {
	return WorkflowClass{
		Name:          "Class4",
		Freq:          map[Pattern]int{Loop: 50, Sequence: 50},
		TargetModules: 20,
		ScientificPct: 25,
	}
}

// Classes returns all four Table I classes in order.
func Classes() []WorkflowClass {
	return []WorkflowClass{Class1(), Class2(), Class3(), Class4()}
}

// RunClass describes one row of Table II: the parameters that determine
// the complexity of a run. The paper's exact numeric ranges are occluded in
// the available text; these values are calibrated so the three kinds land
// in the size regimes the evaluation reports (small runs answered in tens
// of milliseconds on 2008 hardware, large runs in about a second, with
// loop iteration the dominant size driver).
type RunClass struct {
	Name        string
	UserInput   [2]int // data objects provided per INPUT edge
	DataPerStep [2]int // data objects produced per step
	LoopIter    [2]int // iterations per loop
	MaxNodes    int    // cap on run size (steps)
}

// Small is run kind 1 of Table II.
func Small() RunClass {
	return RunClass{Name: "small", UserInput: [2]int{1, 5}, DataPerStep: [2]int{1, 3}, LoopIter: [2]int{1, 5}, MaxNodes: 100}
}

// Medium is run kind 2 of Table II.
func Medium() RunClass {
	return RunClass{Name: "medium", UserInput: [2]int{2, 10}, DataPerStep: [2]int{2, 5}, LoopIter: [2]int{10, 50}, MaxNodes: 1000}
}

// Large is run kind 3 of Table II.
func Large() RunClass {
	return RunClass{Name: "large", UserInput: [2]int{5, 20}, DataPerStep: [2]int{3, 8}, LoopIter: [2]int{50, 200}, MaxNodes: 10000}
}

// RunClasses returns the three Table II kinds in order.
func RunClasses() []RunClass {
	return []RunClass{Small(), Medium(), Large()}
}

// Generator produces workflows, runs and relevant-module selections from a
// seeded source, so every experiment is reproducible.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a generator with the given seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Workflow generates one specification of the given class.
func (g *Generator) Workflow(class WorkflowClass, name string) *spec.Spec {
	b := &wfBuilder{
		g:     g,
		s:     spec.New(name),
		class: class,
	}
	return b.build()
}

// Run executes a specification under a run class, returning the run and
// its event log.
func (g *Generator) Run(s *spec.Spec, class RunClass, runID string) (*run.Run, []wflog.Event, error) {
	return run.Execute(s, run.Config{
		RunID:       runID,
		Seed:        g.rng.Int63(),
		UserInput:   class.UserInput,
		DataPerStep: class.DataPerStep,
		LoopIter:    class.LoopIter,
		MaxSteps:    class.MaxNodes,
	})
}

// RandomRelevant selects the given percentage of a specification's modules
// uniformly at random — the paper's "UV" views ("we randomly chose a given
// percentage of modules in a workflow to be relevant").
func (g *Generator) RandomRelevant(s *spec.Spec, percent int) []string {
	mods := s.ModuleNames()
	k := len(mods) * percent / 100
	perm := g.rng.Perm(len(mods))
	out := make([]string, 0, k)
	for _, idx := range perm[:k] {
		out = append(out, mods[idx])
	}
	sort.Strings(out)
	return out
}

// UBioRelevant returns the hand-picked-style relevant set: the modules
// tagged scientific, standing in for the choices "done by hand (using our
// experience from case studies and advice given by biologists)".
func UBioRelevant(s *spec.Spec) []string { return s.ScientificModules() }

// RandomDAG generates an unstructured random acyclic specification with n
// modules: forward edges appear with probability 1/3, and INPUT/OUTPUT
// edges are added to keep every module on an input-output path. Unlike
// Workflow, the result does not follow the Table I patterns — this is the
// adversarial shape used to probe the minimal-vs-minimum gap, where
// pattern-structured workflows almost never exhibit it.
func (g *Generator) RandomDAG(name string, n int) *spec.Spec {
	s := spec.New(name)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("M%d", i+1)
		s.MustAddModule(spec.Module{Name: names[i], Kind: spec.KindFormatting})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.rng.Intn(3) == 0 {
				s.MustAddEdge(names[i], names[j])
			}
		}
	}
	for i := 0; i < n; i++ {
		if g.rng.Intn(2) == 0 || s.Graph().InDegree(names[i]) == 0 {
			s.MustAddEdge(spec.Input, names[i])
		}
		if g.rng.Intn(2) == 0 || s.Graph().OutDegree(names[i]) == 0 {
			s.MustAddEdge(names[i], spec.Output)
		}
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("gen: RandomDAG produced invalid spec: %v", err))
	}
	return s
}

// wfBuilder accumulates a workflow by appending patterns to open branch
// ends ("frontier"). Every frontier end is eventually wired to OUTPUT.
type wfBuilder struct {
	g        *Generator
	s        *spec.Spec
	class    WorkflowClass
	frontier []string
	next     int
}

func (b *wfBuilder) newModule() string {
	b.next++
	name := fmt.Sprintf("M%d", b.next)
	kind := spec.KindFormatting
	if b.g.rng.Intn(100) < b.class.ScientificPct {
		kind = spec.KindScientific
	}
	b.s.MustAddModule(spec.Module{Name: name, Kind: kind})
	return name
}

// pickPattern samples a pattern according to the class frequencies.
func (b *wfBuilder) pickPattern() Pattern {
	total := 0
	keys := []Pattern{Sequence, Loop, ParallelProcess, ParallelInput, Synchronization}
	for _, k := range keys {
		total += b.class.Freq[k]
	}
	x := b.g.rng.Intn(total)
	for _, k := range keys {
		x -= b.class.Freq[k]
		if x < 0 {
			return k
		}
	}
	return Sequence
}

// takeFrontier removes and returns a random frontier end.
func (b *wfBuilder) takeFrontier() string {
	i := b.g.rng.Intn(len(b.frontier))
	f := b.frontier[i]
	b.frontier = append(b.frontier[:i], b.frontier[i+1:]...)
	return f
}

func (b *wfBuilder) build() *spec.Spec {
	first := b.newModule()
	b.s.MustAddEdge(spec.Input, first)
	b.frontier = []string{first}
	for b.next < b.class.TargetModules {
		switch b.pickPattern() {
		case Sequence:
			b.appendSequence()
		case Loop:
			b.appendLoop()
		case ParallelProcess:
			b.appendParallelProcess()
		case ParallelInput:
			b.appendParallelInput()
		case Synchronization:
			b.appendSynchronization()
		}
	}
	for _, f := range b.frontier {
		b.s.MustAddEdge(f, spec.Output)
	}
	if err := b.s.Validate(); err != nil {
		panic(fmt.Sprintf("gen: generated invalid spec: %v", err))
	}
	return b.s
}

// appendSequence chains one or two modules onto a frontier end.
func (b *wfBuilder) appendSequence() {
	f := b.takeFrontier()
	n := 1 + b.g.rng.Intn(2)
	for i := 0; i < n; i++ {
		m := b.newModule()
		b.s.MustAddEdge(f, m)
		f = m
	}
	b.frontier = append(b.frontier, f)
}

// appendLoop attaches a loop. With probability 2/3 it is a reflexive loop
// (a single self-looping module, the form the paper found most often);
// otherwise a three-module cycle shaped like the phylogenomics alignment
// loop: head -> exit -> rectifier -> head, continuing from the exit.
func (b *wfBuilder) appendLoop() {
	f := b.takeFrontier()
	if b.g.rng.Intn(3) < 2 {
		m := b.newModule()
		b.s.MustAddEdge(f, m)
		b.s.MustAddEdge(m, m)
		b.frontier = append(b.frontier, m)
		return
	}
	head := b.newModule()
	exit := b.newModule()
	rect := b.newModule()
	b.s.MustAddEdge(f, head)
	b.s.MustAddEdge(head, exit)
	b.s.MustAddEdge(exit, rect)
	b.s.MustAddEdge(rect, head)
	b.frontier = append(b.frontier, exit)
}

// appendParallelProcess fans a frontier end out into 2-3 parallel branch
// modules, all of which stay open (a later Synchronization pattern, or the
// final wiring to OUTPUT, closes them).
func (b *wfBuilder) appendParallelProcess() {
	f := b.takeFrontier()
	k := 2 + b.g.rng.Intn(2)
	for i := 0; i < k; i++ {
		m := b.newModule()
		b.s.MustAddEdge(f, m)
		b.frontier = append(b.frontier, m)
	}
}

// appendParallelInput opens an independent branch fed straight from INPUT.
func (b *wfBuilder) appendParallelInput() {
	m := b.newModule()
	b.s.MustAddEdge(spec.Input, m)
	b.frontier = append(b.frontier, m)
}

// appendSynchronization joins two or three frontier ends into one module;
// with a single open end it degrades to a sequence step.
func (b *wfBuilder) appendSynchronization() {
	if len(b.frontier) < 2 {
		b.appendSequence()
		return
	}
	k := 2
	if len(b.frontier) >= 3 && b.g.rng.Intn(2) == 0 {
		k = 3
	}
	join := b.newModule()
	for i := 0; i < k; i++ {
		f := b.takeFrontier()
		b.s.MustAddEdge(f, join)
	}
	b.frontier = append(b.frontier, join)
}
