package export

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

func fixtureResult(t *testing.T, relevant []string, data string) *provenance.Result {
	t.Helper()
	w := warehouse.New(0)
	s := spec.Phylogenomics()
	if err := w.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	r := run.Figure2()
	if err := r.AnnotateInput("d1", map[string]string{"who": "joe"}); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadRun(r); err != nil {
		t.Fatal(err)
	}
	v, err := core.BuildRelevant(s, relevant)
	if err != nil {
		t.Fatal(err)
	}
	res, err := provenance.NewEngine(w).DeepProvenance("fig2", v, data)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPROVJSONJoe(t *testing.T) {
	res := fixtureResult(t, spec.PhyloRelevantJoe(), "d447")
	data, err := PROVJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	entities, activities, usages, generations, err := Validate(data)
	if err != nil {
		t.Fatal(err)
	}
	if entities != res.NumData() {
		t.Fatalf("entities = %d, want %d", entities, res.NumData())
	}
	if activities != res.NumSteps() {
		t.Fatalf("activities = %d, want %d", activities, res.NumSteps())
	}
	if usages == 0 || generations == 0 {
		t.Fatalf("no relations exported: %d usages, %d generations", usages, generations)
	}
	text := string(data)
	// The root is flagged; hidden loop data never leaks.
	if !strings.Contains(text, `"zoom:queryRoot": true`) {
		t.Error("query root not flagged")
	}
	for _, hidden := range []string{"d409", "d410", "d411", "d412"} {
		if strings.Contains(text, hidden+`"`) {
			t.Errorf("hidden data %s leaked into export", hidden)
		}
	}
	if !strings.Contains(text, "zoom:exec/M3@1") {
		t.Error("composite execution missing")
	}
}

func TestPROVJSONExternalRootMetadata(t *testing.T) {
	res := fixtureResult(t, spec.PhyloRelevantJoe(), "d1")
	data, err := PROVJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, `"zoom:external": true`) {
		t.Error("external flag missing")
	}
	if !strings.Contains(text, `"who": "joe"`) {
		t.Error("input metadata missing")
	}
	if _, _, usages, _, err := Validate(data); err != nil || usages != 0 {
		t.Fatalf("external root should have no usages: %d, %v", usages, err)
	}
}

func TestPROVJSONDeterministic(t *testing.T) {
	res := fixtureResult(t, spec.PhyloRelevantMary(), "d413")
	a, err := PROVJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PROVJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("export is not deterministic")
	}
}

func TestValidateRejectsBrokenDocs(t *testing.T) {
	if _, _, _, _, err := Validate([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
	broken := `{"prefix":{},"entity":{},"activity":{},
		"used":{"zoom:u1":{"prov:activity":"zoom:exec/x","prov:entity":"zoom:data/y"}}}`
	if _, _, _, _, err := Validate([]byte(broken)); err == nil {
		t.Fatal("dangling usage accepted")
	}
	broken2 := `{"prefix":{},"entity":{},"activity":{},
		"wasGeneratedBy":{"zoom:g1":{"prov:activity":"zoom:exec/x","prov:entity":"zoom:data/y"}}}`
	if _, _, _, _, err := Validate([]byte(broken2)); err == nil {
		t.Fatal("dangling generation accepted")
	}
}

func TestSpecGraphML(t *testing.T) {
	out := SpecGraphML(spec.Phylogenomics())
	for _, want := range []string{
		`<graph id="phylogenomics"`,
		`<node id="M3"><data key="kind">scientific</data></node>`,
		`<node id="INPUT"><data key="kind">boundary</data></node>`,
		`<edge source="M5" target="M3"/>`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("GraphML missing %q", want)
		}
	}
	if !strings.HasSuffix(out, "</graphml>\n") {
		t.Error("unterminated document")
	}
}
