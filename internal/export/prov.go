// Package export serializes provenance query results to an interchange
// format. The paper grew out of the First Provenance Challenge, whose goal
// was interoperability between provenance systems; the modern descendant
// of that effort is W3C PROV. This package emits the PROV-JSON vocabulary
// restricted to what ZOOM results contain:
//
//	entity                      one per visible data object
//	activity                    one per visible composite execution
//	used(activity, entity)      execution input
//	wasGeneratedBy(entity, activity)  execution output
//	wasDerivedFrom(entity, entity)    root-to-source shortcut edges
//
// Identifiers are namespaced with the "zoom:" prefix. The output is a
// deterministic JSON document, so exports are diffable and goldens are
// stable.
package export

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/provenance"
	"repro/internal/spec"
)

// provDoc is the PROV-JSON document layout (a subset of the spec).
type provDoc struct {
	Prefix   map[string]string         `json:"prefix"`
	Entity   map[string]provEntity     `json:"entity"`
	Activity map[string]provActivity   `json:"activity"`
	Used     map[string]provUsage      `json:"used,omitempty"`
	WasGen   map[string]provGeneration `json:"wasGeneratedBy,omitempty"`
}

type provEntity struct {
	Label    string            `json:"prov:label"`
	External bool              `json:"zoom:external,omitempty"`
	Root     bool              `json:"zoom:queryRoot,omitempty"`
	Metadata map[string]string `json:"zoom:metadata,omitempty"`
}

type provActivity struct {
	Label     string   `json:"prov:label"`
	Composite string   `json:"zoom:composite"`
	Steps     []string `json:"zoom:steps"`
}

type provUsage struct {
	Activity string `json:"prov:activity"`
	Entity   string `json:"prov:entity"`
}

type provGeneration struct {
	Entity   string `json:"prov:entity"`
	Activity string `json:"prov:activity"`
}

func entityID(d string) string   { return "zoom:data/" + d }
func activityID(e string) string { return "zoom:exec/" + e }

// PROVJSON renders a provenance result as PROV-JSON. The document contains
// exactly the information the view exposes: hidden steps and hidden data
// never leak into an export.
func PROVJSON(res *provenance.Result) ([]byte, error) {
	doc := provDoc{
		Prefix: map[string]string{
			"prov": "http://www.w3.org/ns/prov#",
			"zoom": "urn:zoom:" + res.RunID + ":",
		},
		Entity:   make(map[string]provEntity),
		Activity: make(map[string]provActivity),
		Used:     make(map[string]provUsage),
		WasGen:   make(map[string]provGeneration),
	}
	for _, d := range res.Data {
		e := provEntity{Label: d}
		if d == res.Root {
			e.Root = true
			e.External = res.External
			e.Metadata = res.Metadata
		}
		doc.Entity[entityID(d)] = e
	}
	visibleData := make(map[string]bool, len(res.Data))
	for _, d := range res.Data {
		visibleData[d] = true
	}
	usageN, genN := 0, 0
	for _, ex := range res.Executions {
		doc.Activity[activityID(ex.ID)] = provActivity{
			Label:     ex.ID,
			Composite: ex.Composite,
			Steps:     ex.Steps,
		}
		for _, in := range ex.Inputs {
			if !visibleData[in] {
				continue
			}
			usageN++
			doc.Used[fmt.Sprintf("zoom:u%d", usageN)] = provUsage{
				Activity: activityID(ex.ID),
				Entity:   entityID(in),
			}
		}
		for _, out := range ex.Outputs {
			if !visibleData[out] {
				continue
			}
			genN++
			doc.WasGen[fmt.Sprintf("zoom:g%d", genN)] = provGeneration{
				Entity:   entityID(out),
				Activity: activityID(ex.ID),
			}
		}
	}
	if len(doc.Used) == 0 {
		doc.Used = nil
	}
	if len(doc.WasGen) == 0 {
		doc.WasGen = nil
	}
	return json.MarshalIndent(&doc, "", "  ")
}

// Validate parses a PROV-JSON document produced by PROVJSON and checks its
// referential integrity: every usage/generation points at a declared
// entity and activity. It returns the counts, so tests and tools can
// assert on export sizes.
func Validate(data []byte) (entities, activities, usages, generations int, err error) {
	var doc provDoc
	if err = json.Unmarshal(data, &doc); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("export: parse: %w", err)
	}
	for id, u := range doc.Used {
		if _, ok := doc.Activity[u.Activity]; !ok {
			return 0, 0, 0, 0, fmt.Errorf("export: usage %s references unknown activity %s", id, u.Activity)
		}
		if _, ok := doc.Entity[u.Entity]; !ok {
			return 0, 0, 0, 0, fmt.Errorf("export: usage %s references unknown entity %s", id, u.Entity)
		}
	}
	for id, g := range doc.WasGen {
		if _, ok := doc.Activity[g.Activity]; !ok {
			return 0, 0, 0, 0, fmt.Errorf("export: generation %s references unknown activity %s", id, g.Activity)
		}
		if _, ok := doc.Entity[g.Entity]; !ok {
			return 0, 0, 0, 0, fmt.Errorf("export: generation %s references unknown entity %s", id, g.Entity)
		}
	}
	return len(doc.Entity), len(doc.Activity), len(doc.Used), len(doc.WasGen), nil
}

// SpecGraphML renders a workflow specification as GraphML, a second widely
// readable interchange format (yEd, Gephi, NetworkX). Nodes carry the
// module kind as an attribute.
func SpecGraphML(s *spec.Spec) string {
	var b []byte
	app := func(format string, args ...interface{}) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	app("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n")
	app("<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n")
	app("  <key id=\"kind\" for=\"node\" attr.name=\"kind\" attr.type=\"string\"/>\n")
	app("  <graph id=%q edgedefault=\"directed\">\n", s.Name())
	nodes := append([]string{spec.Input, spec.Output}, s.ModuleNames()...)
	sort.Strings(nodes)
	for _, n := range nodes {
		kind := "boundary"
		if m, ok := s.Module(n); ok {
			kind = string(m.Kind)
		}
		app("    <node id=%q><data key=\"kind\">%s</data></node>\n", n, kind)
	}
	for _, e := range s.Edges() {
		app("    <edge source=%q target=%q/>\n", e.From, e.To)
	}
	app("  </graph>\n</graphml>\n")
	return string(b)
}
