# Build, test, and verification entry points. `make ci` is what the CI
# workflow runs; `make race` and `make fuzz-smoke` exercise the concurrent
# serving layer specifically.

GO ?= go

.PHONY: all build vet test race fuzz-smoke bench bench-smoke bench-ingest-smoke bench-labels-smoke bench-mmap-smoke bench-obs-smoke bench-obs-cluster-smoke bench-shard-smoke bench-replica-smoke serve-smoke cluster-smoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency layer: stress tests and the batch/singleflight tests all
# match Concurrent|Stress, run under the race detector across every package.
race:
	$(GO) test -race -run 'Concurrent|Stress' ./...

# Short fuzzing passes over the two fuzz targets; long runs are
# `go test -fuzz=FuzzConnectBy ./internal/warehouse/` etc.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzConnectBy -fuzztime=10s ./internal/warehouse/
	$(GO) test -run='^$$' -fuzz=FuzzRelevUserViewBuilder -fuzztime=10s ./internal/core/
	$(GO) test -run='^$$' -fuzz=FuzzReachLabels -fuzztime=10s ./internal/run/
	$(GO) test -run='^$$' -fuzz=FuzzSnapshotV3 -fuzztime=10s ./internal/warehouse/

bench:
	$(GO) run ./cmd/zoombench

# One-iteration pass over the compact-index benchmarks (P1): catches
# regressions that break the indexed fast path without paying full
# benchmark time. Full numbers: `go test -bench Compact -benchmem .`
bench-smoke:
	$(GO) test -run '^$$' -bench 'Compact' -benchtime=1x -benchmem .

# Same idea for the ingest benchmarks (L1): snapshot load/save in both
# formats plus streaming log ingestion, one iteration each.
bench-ingest-smoke:
	$(GO) test -run '^$$' -bench 'Ingest' -benchtime=1x -benchmem .

# One-iteration pass over the reachability-label benchmarks (P2): cold
# query / derivation per strategy plus the label build itself. Full
# numbers: `go test -bench Labels -benchmem .`
bench-labels-smoke:
	$(GO) test -run '^$$' -bench 'Labels' -benchtime=1x -benchmem .

# One-iteration pass over the mmap-serving benchmarks (L2): v3 open vs v2
# full load, plus the lazy first-touch query. Full numbers:
# `go test -bench Mmap -benchmem .`
bench-mmap-smoke:
	$(GO) test -run '^$$' -bench 'Mmap' -benchtime=1x -benchmem .

# Observability overhead (O1/O2): the warm-query benchmark with metrics
# detached vs. attached vs. fully traced. The attached side must stay
# within ~2% of detached; full numbers:
# `go test -bench ObsOverhead -benchtime=2s .`
bench-obs-smoke:
	$(GO) test -run '^$$' -bench 'ObsOverhead' -benchtime=1x -benchmem .

# Cluster observability overhead (O3): the routed query with tracing off
# vs ?trace=1 cross-process stitching. The absolute comparison table is
# `go run ./cmd/zoombench -only O3`.
bench-obs-cluster-smoke:
	$(GO) test -run '^$$' -bench 'ObsOverhead/routed' -benchtime=1x -benchmem .

# One-iteration pass over the sharded-routing benchmarks (S1): direct vs
# routed query latency at 1 and 4 shards plus the /v1/runs scatter-gather.
# The throughput-scaling table itself is `go run ./cmd/zoombench -only S1`.
bench-shard-smoke:
	$(GO) test -run '^$$' -bench 'Shard' -benchtime=1x -benchmem .

# One-iteration pass over the replicated-routing benchmarks (S2): the
# healthy, failover, and cache-hit forwarding paths through a 2-shard ×
# 2-replica router. The availability/hedging table itself is
# `go run ./cmd/zoombench -only S2`.
bench-replica-smoke:
	$(GO) test -run '^$$' -bench 'Replica' -benchtime=1x -benchmem .

# End-to-end smoke of `zoom serve`: boots the server on a free port against
# the example warehouse, then checks /healthz, /readyz, /metrics, a traced
# query (trace id header + span tree), the slow log, and SIGTERM shutdown.
serve-smoke:
	sh scripts/serve_smoke.sh

# End-to-end smoke of the sharded deployment: `zoom snapshot shard` into 2
# shards, a worker per shard, `zoom router` in front; checks routed traced
# queries, the merged catalog, aggregated readiness, and the dead-worker
# fast-502 path. A second phase runs 2 replicas per shard and checks
# zero-loss failover across a replica kill plus the router response cache.
cluster-smoke:
	sh scripts/cluster_smoke.sh

ci: vet build test race fuzz-smoke bench-smoke bench-ingest-smoke bench-labels-smoke bench-mmap-smoke bench-obs-smoke bench-obs-cluster-smoke bench-shard-smoke bench-replica-smoke serve-smoke cluster-smoke
