#!/usr/bin/env sh
# End-to-end smoke test for `zoom serve`: build the CLI, create the example
# warehouse, boot the server on a free port, and poke every surface a
# deployment relies on — /healthz, /readyz, /metrics, a real query with its
# X-Zoom-Trace-Id header and inline span tree, and the slow-query log.
# Exits non-zero on the first failed check.
set -eu

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    [ -n "$server_pid" ] && wait "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$workdir/serve.log" >&2 || true
    exit 1
}

echo "serve-smoke: building zoom"
go build -o "$workdir/zoom" ./cmd/zoom

echo "serve-smoke: creating example warehouse"
"$workdir/zoom" example -warehouse "$workdir/wh.json" >/dev/null

# -addr :0 binds a free port; the server prints the bound address on stderr.
"$workdir/zoom" serve -warehouse "$workdir/wh.json" -addr 127.0.0.1:0 \
    -slow -1ns -expvar "" >"$workdir/serve.log" 2>&1 &
server_pid=$!

base=""
for _ in $(seq 1 50); do
    base=$(sed -n 's!.*listening on \(http://[0-9.:]*\).*!\1!p' "$workdir/serve.log" | head -1)
    [ -n "$base" ] && break
    kill -0 "$server_pid" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
done
[ -n "$base" ] && echo "serve-smoke: server at $base" || fail "no listening line in server log"

# Health answers immediately; readiness may lag the warehouse load.
curl -fsS "$base/healthz" | grep -q ok || fail "/healthz"
for _ in $(seq 1 50); do
    if curl -fsS "$base/readyz" 2>/dev/null | grep -q ready; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "${ready:-}" = 1 ] || fail "/readyz never became ready"
echo "serve-smoke: healthy and ready"

# One deep query through the registered joe view, traced inline.
curl -fsS -D "$workdir/headers" -o "$workdir/query.json" \
    -X POST -H 'Content-Type: application/json' \
    -d '{"run":"fig2","data":"d447","view":"joe"}' \
    "$base/v1/query?trace=1" || fail "POST /v1/query"
grep -qi '^x-zoom-trace-id: [0-9a-f]\{16\}' "$workdir/headers" || fail "no X-Zoom-Trace-Id header"
grep -q '"outcome": "miss"' "$workdir/query.json" || fail "first query was not a cache miss"
grep -q '"name": "query.lookup"' "$workdir/query.json" || fail "trace has no query.lookup span"
grep -q '"name": "closure.compute"' "$workdir/query.json" || fail "cold trace has no closure.compute span"
echo "serve-smoke: traced query ok ($(sed -n 's/.*"trace_id": "\([0-9a-f]*\)".*/\1/p' "$workdir/query.json" | head -1))"

# The trace id in the body matches the header.
hdr_id=$(sed -n 's/^[Xx]-[Zz]oom-[Tt]race-[Ii]d: \([0-9a-f]*\).*/\1/p' "$workdir/headers" | head -1)
grep -q "\"trace_id\": \"$hdr_id\"" "$workdir/query.json" || fail "header/body trace id mismatch"

# Metrics exposition carries the query that just ran.
curl -fsS "$base/metrics" >"$workdir/metrics.txt" || fail "GET /metrics"
grep -q '^# TYPE zoom_http_requests counter' "$workdir/metrics.txt" || fail "no request counter in /metrics"
grep -q '^zoom_server_ready 1' "$workdir/metrics.txt" || fail "server not ready in /metrics"
grep -q 'zoom_query_deep_total_ns_count{outcome="miss"} 1' "$workdir/metrics.txt" || fail "query miss not in /metrics"

# With -slow -1ns every request is slow; the log must hold the query.
curl -fsS "$base/debug/slowlog" >"$workdir/slowlog.json" || fail "GET /debug/slowlog"
grep -q '"route": "POST /v1/query"' "$workdir/slowlog.json" || fail "query missing from slow log"
grep -q "\"trace_id\": \"$hdr_id\"" "$workdir/slowlog.json" || fail "slow log lost the trace id"

# Graceful shutdown: SIGTERM must end the process cleanly.
kill -TERM "$server_pid"
wait "$server_pid" || fail "server exited non-zero on SIGTERM"
server_pid=""
echo "serve-smoke: PASS"
