#!/usr/bin/env sh
# End-to-end smoke test for the sharded deployment: build the CLI, split the
# example warehouse into 2 shard snapshots with `zoom snapshot shard`, boot a
# worker per shard plus `zoom router` in front, and check the full scale-out
# surface — routed queries, the merged run catalog, aggregated readiness,
# trace-id propagation through the hop, and the dead-worker path (fast 502
# naming the dead shard while the survivor keeps answering). Exits non-zero
# on the first failed check.
set -eu

workdir=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do
        kill "$p" 2>/dev/null || true
    done
    for p in $pids; do
        wait "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
    echo "cluster-smoke: FAIL: $*" >&2
    for log in "$workdir"/*.log; do
        echo "--- $log ---" >&2
        cat "$log" >&2 || true
    done
    exit 1
}

# Wait for the "listening on http://..." line a zoom process prints and
# echo the base URL.
wait_listen() {
    _log=$1
    _pid=$2
    _base=""
    for _ in $(seq 1 50); do
        _base=$(sed -n 's!.*listening on \(http://[0-9.:]*\).*!\1!p' "$_log" | head -1)
        [ -n "$_base" ] && break
        kill -0 "$_pid" 2>/dev/null || return 1
        sleep 0.1
    done
    [ -n "$_base" ] && echo "$_base"
}

echo "cluster-smoke: building zoom"
go build -o "$workdir/zoom" ./cmd/zoom

echo "cluster-smoke: creating and sharding the example warehouse"
"$workdir/zoom" example -warehouse "$workdir/wh.json" >/dev/null
"$workdir/zoom" snapshot shard -in "$workdir/wh.json" -n 2 >/dev/null
[ -f "$workdir/wh.json.shard0" ] || fail "missing shard0 snapshot"
[ -f "$workdir/wh.json.shard1" ] || fail "missing shard1 snapshot"

"$workdir/zoom" serve -warehouse "$workdir/wh.json.shard0" -addr 127.0.0.1:0 \
    -expvar "" >"$workdir/worker0.log" 2>&1 &
w0_pid=$!
pids="$pids $w0_pid"
"$workdir/zoom" serve -warehouse "$workdir/wh.json.shard1" -addr 127.0.0.1:0 \
    -expvar "" >"$workdir/worker1.log" 2>&1 &
w1_pid=$!
pids="$pids $w1_pid"
w0=$(wait_listen "$workdir/worker0.log" "$w0_pid") || fail "worker 0 never listened"
w1=$(wait_listen "$workdir/worker1.log" "$w1_pid") || fail "worker 1 never listened"
echo "cluster-smoke: workers at $w0 $w1"

# Worker order is shard order: shard0 first.
"$workdir/zoom" router -addr 127.0.0.1:0 -workers "$w0,$w1" \
    -health-interval 200ms >"$workdir/router.log" 2>&1 &
router_pid=$!
pids="$pids $router_pid"
base=$(wait_listen "$workdir/router.log" "$router_pid") || fail "router never listened"
echo "cluster-smoke: router at $base"

# Aggregated readiness: 200 only once every shard is ready.
for _ in $(seq 1 50); do
    if curl -fsS "$base/readyz" 2>/dev/null | grep -q '"ready": true'; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "${ready:-}" = 1 ] || fail "router /readyz never became ready"
echo "cluster-smoke: cluster ready"

# The merged catalog holds the example run wherever the ring placed it.
curl -fsS "$base/v1/runs" >"$workdir/runs.json" || fail "GET /v1/runs"
grep -q '"count": 1' "$workdir/runs.json" || fail "merged catalog count != 1"
grep -q '"id": "fig2"' "$workdir/runs.json" || fail "merged catalog misses fig2"

# A routed deep query through the named joe view, with a caller-chosen
# trace id that must survive the router hop into the worker's answer.
trace=cafe0123cafe0123
curl -fsS -X POST -H 'Content-Type: application/json' \
    -H "X-Zoom-Trace-Id: $trace" \
    -d '{"run":"fig2","data":"d447","view":"joe"}' \
    "$base/v1/query" >"$workdir/query.json" || fail "routed POST /v1/query"
grep -q "\"trace_id\": \"$trace\"" "$workdir/query.json" || fail "trace id lost across the router hop"
grep -q '"data": "d447"' "$workdir/query.json" || fail "routed query wrong payload"
echo "cluster-smoke: routed traced query ok"

# /v1/shards names both workers and their run counts.
curl -fsS "$base/v1/shards" >"$workdir/shards.json" || fail "GET /v1/shards"
grep -q '"shard": 0' "$workdir/shards.json" || fail "shard 0 missing from /v1/shards"
grep -q '"shard": 1' "$workdir/shards.json" || fail "shard 1 missing from /v1/shards"

# Dead-worker path: kill the worker that owns fig2, then the routed query
# must fail fast with a 502 naming its shard while /v1/runs still answers
# (flagged partial), and readiness drops to 503.
if curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"run":"fig2","data":"d447"}' "$w0/v1/query" >/dev/null 2>&1; then
    owner_pid=$w0_pid
    owner_shard=0
else
    owner_pid=$w1_pid
    owner_shard=1
fi
kill "$owner_pid"
wait "$owner_pid" 2>/dev/null || true
echo "cluster-smoke: killed shard $owner_shard worker"

status=$(curl -s -o "$workdir/dead.json" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    -d '{"run":"fig2","data":"d447"}' "$base/v1/query")
[ "$status" = 502 ] || fail "query on dead shard returned $status, want 502"
grep -q "shard $owner_shard" "$workdir/dead.json" || fail "502 does not name the dead shard"

curl -fsS "$base/v1/runs" >"$workdir/partial.json" || fail "GET /v1/runs with dead shard"
grep -q '"partial": true' "$workdir/partial.json" || fail "degraded catalog not flagged partial"
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/readyz")
[ "$code" = 503 ] || fail "router /readyz with dead shard returned $code, want 503"
echo "cluster-smoke: dead shard fails fast, survivors keep answering"

# Graceful shutdown of the router.
kill -TERM "$router_pid"
wait "$router_pid" || fail "router exited non-zero on SIGTERM"
pids="$w0_pid $w1_pid"
echo "cluster-smoke: PASS"
