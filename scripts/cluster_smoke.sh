#!/usr/bin/env sh
# End-to-end smoke test for the sharded deployment: build the CLI, split the
# example warehouse into 2 shard snapshots with `zoom snapshot shard`, boot a
# worker per shard plus `zoom router` in front, and check the full scale-out
# surface — routed queries, the merged run catalog, aggregated readiness,
# trace-id propagation through the hop, and the dead-worker path (fast 502
# naming the dead shard while the survivor keeps answering). A second phase
# reboots the cluster with two replicas per shard and checks replica-aware
# routing: killing one replica must lose ZERO queries (failover), repeated
# identical queries must hit the router response cache, and only killing
# the sibling too brings the 502 back. Exits non-zero on the first failed
# check.
set -eu

workdir=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do
        kill "$p" 2>/dev/null || true
    done
    for p in $pids; do
        wait "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
    echo "cluster-smoke: FAIL: $*" >&2
    for log in "$workdir"/*.log; do
        echo "--- $log ---" >&2
        cat "$log" >&2 || true
    done
    exit 1
}

# Wait for the "listening on http://..." line a zoom process prints and
# echo the base URL.
wait_listen() {
    _log=$1
    _pid=$2
    _base=""
    for _ in $(seq 1 50); do
        _base=$(sed -n 's!.*listening on \(http://[0-9.:]*\).*!\1!p' "$_log" | head -1)
        [ -n "$_base" ] && break
        kill -0 "$_pid" 2>/dev/null || return 1
        sleep 0.1
    done
    [ -n "$_base" ] && echo "$_base"
}

echo "cluster-smoke: building zoom"
go build -o "$workdir/zoom" ./cmd/zoom

echo "cluster-smoke: creating and sharding the example warehouse"
"$workdir/zoom" example -warehouse "$workdir/wh.json" >/dev/null
"$workdir/zoom" snapshot shard -in "$workdir/wh.json" -n 2 >/dev/null
[ -f "$workdir/wh.json.shard0" ] || fail "missing shard0 snapshot"
[ -f "$workdir/wh.json.shard1" ] || fail "missing shard1 snapshot"

"$workdir/zoom" serve -warehouse "$workdir/wh.json.shard0" -addr 127.0.0.1:0 \
    -expvar "" >"$workdir/worker0.log" 2>&1 &
w0_pid=$!
pids="$pids $w0_pid"
"$workdir/zoom" serve -warehouse "$workdir/wh.json.shard1" -addr 127.0.0.1:0 \
    -expvar "" >"$workdir/worker1.log" 2>&1 &
w1_pid=$!
pids="$pids $w1_pid"
w0=$(wait_listen "$workdir/worker0.log" "$w0_pid") || fail "worker 0 never listened"
w1=$(wait_listen "$workdir/worker1.log" "$w1_pid") || fail "worker 1 never listened"
echo "cluster-smoke: workers at $w0 $w1"

# Worker order is shard order: shard0 first.
"$workdir/zoom" router -addr 127.0.0.1:0 -workers "$w0,$w1" \
    -health-interval 200ms >"$workdir/router.log" 2>&1 &
router_pid=$!
pids="$pids $router_pid"
base=$(wait_listen "$workdir/router.log" "$router_pid") || fail "router never listened"
echo "cluster-smoke: router at $base"

# Aggregated readiness: 200 only once every shard is ready.
for _ in $(seq 1 50); do
    if curl -fsS "$base/readyz" 2>/dev/null | grep -q '"ready": true'; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "${ready:-}" = 1 ] || fail "router /readyz never became ready"
echo "cluster-smoke: cluster ready"

# The merged catalog holds the example run wherever the ring placed it.
curl -fsS "$base/v1/runs" >"$workdir/runs.json" || fail "GET /v1/runs"
grep -q '"count": 1' "$workdir/runs.json" || fail "merged catalog count != 1"
grep -q '"id": "fig2"' "$workdir/runs.json" || fail "merged catalog misses fig2"

# A routed deep query through the named joe view, with a caller-chosen
# trace id that must survive the router hop into the worker's answer.
trace=cafe0123cafe0123
curl -fsS -X POST -H 'Content-Type: application/json' \
    -H "X-Zoom-Trace-Id: $trace" \
    -d '{"run":"fig2","data":"d447","view":"joe"}' \
    "$base/v1/query" >"$workdir/query.json" || fail "routed POST /v1/query"
grep -q "\"trace_id\": \"$trace\"" "$workdir/query.json" || fail "trace id lost across the router hop"
grep -q '"data": "d447"' "$workdir/query.json" || fail "routed query wrong payload"
echo "cluster-smoke: routed traced query ok"

# /v1/shards names both workers and their run counts.
curl -fsS "$base/v1/shards" >"$workdir/shards.json" || fail "GET /v1/shards"
grep -q '"shard": 0' "$workdir/shards.json" || fail "shard 0 missing from /v1/shards"
grep -q '"shard": 1' "$workdir/shards.json" || fail "shard 1 missing from /v1/shards"

# Dead-worker path: kill the worker that owns fig2, then the routed query
# must fail fast with a 502 naming its shard while /v1/runs still answers
# (flagged partial), and readiness drops to 503.
if curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"run":"fig2","data":"d447"}' "$w0/v1/query" >/dev/null 2>&1; then
    owner_pid=$w0_pid
    owner_shard=0
else
    owner_pid=$w1_pid
    owner_shard=1
fi
kill "$owner_pid"
wait "$owner_pid" 2>/dev/null || true
echo "cluster-smoke: killed shard $owner_shard worker"

status=$(curl -s -o "$workdir/dead.json" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    -d '{"run":"fig2","data":"d447"}' "$base/v1/query")
[ "$status" = 502 ] || fail "query on dead shard returned $status, want 502"
grep -q "shard $owner_shard" "$workdir/dead.json" || fail "502 does not name the dead shard"

curl -fsS "$base/v1/runs" >"$workdir/partial.json" || fail "GET /v1/runs with dead shard"
grep -q '"partial": true' "$workdir/partial.json" || fail "degraded catalog not flagged partial"
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/readyz")
[ "$code" = 503 ] || fail "router /readyz with dead shard returned $code, want 503"
echo "cluster-smoke: dead shard fails fast, survivors keep answering"

# Graceful shutdown of the router.
kill -TERM "$router_pid"
wait "$router_pid" || fail "router exited non-zero on SIGTERM"
pids="$w0_pid $w1_pid"

# ---- Replica phase: 2 shards x 2 replicas, kill one replica, zero loss ----
echo "cluster-smoke: booting replicated cluster (2 shards x 2 replicas)"
for name in r0a r0b r1a r1b; do
    case $name in
        r0*) snap="$workdir/wh.json.shard0" ;;
        *)   snap="$workdir/wh.json.shard1" ;;
    esac
    "$workdir/zoom" serve -warehouse "$snap" -addr 127.0.0.1:0 \
        -expvar "" >"$workdir/$name.log" 2>&1 &
    eval "${name}_pid=$!"
    pids="$pids $!"
done
r0a=$(wait_listen "$workdir/r0a.log" "$r0a_pid") || fail "replica r0a never listened"
r0b=$(wait_listen "$workdir/r0b.log" "$r0b_pid") || fail "replica r0b never listened"
r1a=$(wait_listen "$workdir/r1a.log" "$r1a_pid") || fail "replica r1a never listened"
r1b=$(wait_listen "$workdir/r1b.log" "$r1b_pid") || fail "replica r1b never listened"

# Replica groups: `;` separates shards, `,` separates replicas of a shard.
# -slow -1ms logs every request to /debug/slowlog so the stitched-trace
# check below can read the tree back out of the ring.
"$workdir/zoom" router -addr 127.0.0.1:0 -workers "$r0a,$r0b;$r1a,$r1b" \
    -health-interval 200ms -hedge 250ms -slow -1ms >"$workdir/router2.log" 2>&1 &
router2_pid=$!
pids="$pids $router2_pid"
base=$(wait_listen "$workdir/router2.log" "$router2_pid") || fail "replicated router never listened"
echo "cluster-smoke: replicated router at $base"

ready=""
for _ in $(seq 1 50); do
    if curl -fsS "$base/readyz" 2>/dev/null | grep -q '"ready": true'; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "${ready:-}" = 1 ] || fail "replicated router /readyz never became ready"

# Repeated identical queries exercise the router response cache: the second
# answer is served from the router without a worker round trip.
body='{"run":"fig2","data":"d447","view":"joe"}'
curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" \
    "$base/v1/query" >/dev/null || fail "replicated query (cache prime)"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" \
    "$base/v1/query" >/dev/null || fail "replicated query (cache hit)"
curl -fsS "$base/metrics" >"$workdir/metrics2.txt" || fail "GET /metrics on replicated router"
grep -E '^zoom_router_cache_hits [1-9]' "$workdir/metrics2.txt" >/dev/null \
    || fail "router response cache recorded no hits"
echo "cluster-smoke: router response cache serving repeats"

# Stitched distributed trace: ?trace=1 through the router must return ONE
# span tree holding the router's spans (route.pick, cache.lookup,
# replica.attempt) with the worker's engine spans grafted under the
# winning attempt, the worker subtree naming its attempt via parent_span.
strace=beefcafe01234567
curl -fsS -X POST -H 'Content-Type: application/json' \
    -H "X-Zoom-Trace-Id: $strace" -d "$body" \
    "$base/v1/query?trace=1" >"$workdir/stitched.json" || fail "traced routed query"
grep -q '"name": "route.pick"' "$workdir/stitched.json" || fail "stitched tree misses route.pick"
grep -q '"name": "cache.lookup"' "$workdir/stitched.json" || fail "stitched tree misses cache.lookup"
grep -q '"name": "replica.attempt"' "$workdir/stitched.json" || fail "stitched tree misses replica.attempt"
grep -q '"name": "query.lookup"' "$workdir/stitched.json" || fail "stitched tree misses the worker's query.lookup"
grep -q "\"parent_span\": \"$strace.a0\"" "$workdir/stitched.json" \
    || fail "worker subtree does not name the router attempt it answered"
# The same stitched tree sits in the router slowlog (threshold < 0).
curl -fsS "$base/debug/slowlog" >"$workdir/slowlog.json" || fail "GET /debug/slowlog"
grep -q "\"trace_id\": \"$strace\"" "$workdir/slowlog.json" || fail "traced request missing from router slowlog"
grep -q '"name": "replica.attempt"' "$workdir/slowlog.json" || fail "slowlog entry lost the span tree"
echo "cluster-smoke: stitched trace spans router and worker"

# Aggregated cluster stats: the workers' registries merge into one
# snapshot, unprefixed totals plus shard.<k>.-prefixed series.
curl -fsS "$base/v1/cluster/stats" >"$workdir/cstats.json" || fail "GET /v1/cluster/stats"
grep -q '"shards_ok": 2' "$workdir/cstats.json" || fail "cluster stats shards_ok != 2"
grep -q '"http.requests"' "$workdir/cstats.json" || fail "merged snapshot misses http.requests"
grep -q '"shard.0.http.requests"' "$workdir/cstats.json" || fail "merged snapshot misses shard.0. series"
grep -q '"router.requests"' "$workdir/cstats.json" || fail "cluster stats misses the router's own snapshot"
# /v1/shards carries each replica's last health-poll reading.
curl -fsS "$base/v1/shards" >"$workdir/shards2.json" || fail "GET /v1/shards on replicated router"
grep -q '"last_poll_ns"' "$workdir/shards2.json" || fail "/v1/shards misses last_poll_ns"
echo "cluster-smoke: cluster stats aggregation ok"

# Kill the PREFERRED replica of the shard that owns fig2, then hammer the
# routed query: with a live sibling, not one request may fail.
if curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"run":"fig2","data":"d447"}' "$r0a/v1/query" >/dev/null 2>&1; then
    owner=0; pref_pid=$r0a_pid; sibl_pid=$r0b_pid
else
    owner=1; pref_pid=$r1a_pid; sibl_pid=$r1b_pid
fi
kill "$pref_pid"
wait "$pref_pid" 2>/dev/null || true
echo "cluster-smoke: killed preferred replica of shard $owner"

i=0
while [ "$i" -lt 20 ]; do
    # A unique query string bypasses the response cache, forcing each
    # request through the failover path rather than a cached answer.
    status=$(curl -s -o "$workdir/failover.json" -w '%{http_code}' \
        -X POST -H 'Content-Type: application/json' \
        -d "$body" "$base/v1/query?i=$i")
    [ "$status" = 200 ] || fail "query $i after replica kill returned $status, want 200 (zero-loss failover)"
    i=$((i + 1))
done
grep -q '"data": "d447"' "$workdir/failover.json" || fail "failover answer wrong payload"
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/readyz")
[ "$code" = 200 ] || fail "replicated router /readyz with one dead replica returned $code, want 200"
curl -fsS "$base/metrics" >"$workdir/metrics3.txt" || fail "GET /metrics after replica kill"
grep -E '^zoom_router_failovers [1-9]' "$workdir/metrics3.txt" >/dev/null \
    || fail "replica kill recorded no failovers"
echo "cluster-smoke: 20/20 queries answered across the replica kill"

# Killing the sibling too exhausts shard $owner: now the 502 comes back.
kill "$sibl_pid"
wait "$sibl_pid" 2>/dev/null || true
status=$(curl -s -o "$workdir/dead2.json" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    -d '{"run":"fig2","data":"d447"}' "$base/v1/query?j=1")
[ "$status" = 502 ] || fail "query with both replicas dead returned $status, want 502"
grep -q "shard $owner" "$workdir/dead2.json" || fail "502 does not name the exhausted shard"
echo "cluster-smoke: exhausted shard fails fast once both replicas are gone"

# Graceful shutdown of the replicated router.
kill -TERM "$router2_pid"
wait "$router2_pid" || fail "replicated router exited non-zero on SIGTERM"
echo "cluster-smoke: PASS"
