// Hierarchy: the view-evolution story of Sections IV and VII. A user
// starts from the black box, flags modules relevant one by one (watching
// the provenance answer grow), then drills into a single composite with
// RefineComposite — the paper's "viewing each composite module as itself
// being a workflow" — and finally inspects an edge of the provenance graph
// with the prototype's canned queries.
package main

import (
	"fmt"
	"log"

	"repro/zoom"
)

func main() {
	s := zoom.Phylogenomics()
	sys := zoom.NewSystem()
	must(sys.RegisterSpec(s))
	must(sys.LoadRun(zoom.PhylogenomicsRun()))

	// Step 1: flag modules one at a time, like the interactive
	// UserViewBuilder, and watch the provenance of the final tree sharpen.
	fmt.Println("flagging modules relevant, one by one:")
	var relevant []string
	for _, m := range []string{"M3", "M7", "M2"} {
		var v *zoom.UserView
		var err error
		v, relevant, err = zoom.AddRelevant(s, relevant, m)
		must(err)
		res, err := sys.DeepProvenance("fig2", v, "d447")
		must(err)
		fmt.Printf("  +%s -> view size %d, provenance of d447: %d executions, %d data objects\n",
			m, v.Size(), res.NumSteps(), res.NumData())
	}

	joe, err := zoom.BuildUserView(s, relevant)
	must(err)

	// Step 2: drill into Joe's tree-building composite M9 (named M7 by the
	// builder) without touching the rest of the view.
	sub, err := zoom.SubSpec(joe, "M7")
	must(err)
	fmt.Printf("\ninside composite M7: sub-workflow with modules %v\n", sub.ModuleNames())
	refined, err := zoom.RefineComposite(joe, "M7", []string{"M7", "M8"})
	must(err)
	fmt.Printf("refined view (size %d): %v\n", refined.Size(), refined)
	if !zoom.Refines(refined, joe) {
		log.Fatal("refinement relation violated")
	}
	res, err := sys.DeepProvenance("fig2", refined, "d447")
	must(err)
	fmt.Printf("provenance of d447 through the refined view: %d executions, %d data objects\n",
		res.NumSteps(), res.NumData())

	// Step 3: the canned queries of the prototype.
	execs, err := sys.Executions("fig2", refined)
	must(err)
	fmt.Println("\nexecutions visible in the refined view:")
	for _, ex := range execs {
		fmt.Printf("  %s (%s): steps %v\n", ex.ID, ex.Composite, ex.Steps)
	}
	// Click on the edge from the newly exposed M8 step into the tree
	// composite: the formatted annotations d414 flow across it.
	data, err := sys.DataBetween("fig2", refined, "S8", "M7@1")
	must(err)
	fmt.Printf("data on the edge S8 -> M7@1: %s\n", zoom.FormatDataSet(data))
	ok, err := sys.InProvenance("fig2", "d308", "d447")
	must(err)
	fmt.Printf("is d308 in the provenance of the final tree? %v\n", ok)
	common, err := sys.CommonProvenance("fig2", refined, "d413", "d414")
	must(err)
	fmt.Printf("shared provenance of alignment d413 and annotations d414: %s\n",
		zoom.FormatDataSet(common))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
