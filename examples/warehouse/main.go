// Warehouse: a lab-scale deployment. Mirrors the paper's sizing story —
// "what would happen in a large laboratory with 40 workflows, each of which
// is executed about twice a week" — by bulk-loading many specifications and
// runs into one warehouse, persisting it to disk, restoring it, and issuing
// both directions of canned query against the restored copy.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/zoom"
)

func main() {
	dir, err := os.MkdirTemp("", "zoom-warehouse")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const (
		workflowsPerClass = 3
		runsPerWorkflow   = 4
	)
	g := zoom.NewGenerator(2024)
	sys := zoom.NewSystem()
	specs := make(map[string]*zoom.Spec)
	totalRuns := 0
	for _, class := range zoom.WorkflowClasses() {
		for wi := 0; wi < workflowsPerClass; wi++ {
			s := g.Workflow(class, fmt.Sprintf("%s-w%d", class.Name, wi))
			must(sys.RegisterSpec(s))
			specs[s.Name()] = s
			// Register the biologist view alongside the spec, as the
			// system designer does in the paper's architecture.
			v, err := zoom.BuildUserView(s, zoom.UBioRelevant(s))
			must(err)
			must(sys.RegisterView("ubio", v))
			for ri := 0; ri < runsPerWorkflow; ri++ {
				r, events, err := g.Run(s, zoom.RunClasses()[0], fmt.Sprintf("%s-r%d", s.Name(), ri))
				must(err)
				// Load through the log path: this is what a workflow
				// system integration would do.
				must(sys.LoadLog(r.ID(), s.Name(), events))
				totalRuns++
			}
		}
	}
	fmt.Printf("loaded %d specifications, %d runs\n", len(specs), totalRuns)

	// Persist and restore.
	snap := filepath.Join(dir, "warehouse.json")
	f, err := os.Create(snap)
	must(err)
	must(sys.Save(f))
	must(f.Close())
	info, _ := os.Stat(snap)
	fmt.Printf("snapshot: %s (%d bytes)\n", snap, info.Size())

	f, err = os.Open(snap)
	must(err)
	restored, err := zoom.LoadSystem(f)
	must(err)
	must(f.Close())

	// Query every run's final output through its registered UBio view.
	var viewData, adminData int
	for _, runID := range restored.RunIDs() {
		r, err := restored.Run(runID)
		must(err)
		s := specs[r.SpecName()]
		v, err := restored.View(r.SpecName(), "ubio")
		must(err)
		final := r.FinalOutputs()[0]
		res, err := restored.DeepProvenance(runID, v, final)
		must(err)
		admin, err := restored.DeepProvenance(runID, zoom.UAdmin(s), final)
		must(err)
		viewData += res.NumData()
		adminData += admin.NumData()
	}
	fmt.Printf("deep provenance of every final output: %d data items under UBio vs %d under UAdmin (%.0f%% filtered)\n",
		viewData, adminData, 100*(1-float64(viewData)/float64(adminData)))

	// The inverse canned query: which results depend on this input?
	runID := restored.RunIDs()[0]
	r, _ := restored.Run(runID)
	v, _ := restored.View(r.SpecName(), "ubio")
	in := r.ExternalInputs()[0]
	der, err := restored.DeepDerivation(runID, v, in)
	must(err)
	fmt.Printf("everything derived from %s in %s: %d executions, data %s\n",
		in, runID, der.NumSteps(), zoom.FormatDataSet(der.Data))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
