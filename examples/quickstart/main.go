// Quickstart: define a small workflow, simulate a run, build a user view
// with RelevUserViewBuilder, and ask a provenance query through it.
package main

import (
	"fmt"
	"log"

	"repro/zoom"
)

func main() {
	// 1. Define a workflow specification: fetch -> clean -> analyze ->
	// report, with a side branch preparing reference data.
	s := zoom.NewSpec("quickstart")
	for _, m := range []zoom.Module{
		{Name: "fetch", Kind: zoom.KindFormatting, Desc: "download raw records"},
		{Name: "clean", Kind: zoom.KindFormatting, Desc: "normalize formats"},
		{Name: "analyze", Kind: zoom.KindScientific, Desc: "the actual science"},
		{Name: "prepare-ref", Kind: zoom.KindFormatting, Desc: "format reference data"},
		{Name: "report", Kind: zoom.KindScientific, Desc: "produce the report"},
	} {
		if err := s.AddModule(m); err != nil {
			log.Fatal(err)
		}
	}
	for _, e := range [][2]string{
		{zoom.Input, "fetch"}, {"fetch", "clean"}, {"clean", "analyze"},
		{zoom.Input, "prepare-ref"}, {"prepare-ref", "analyze"},
		{"analyze", "report"}, {"report", zoom.Output},
	} {
		if err := s.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Simulate one execution. Real deployments would instead ingest the
	// workflow system's log with sys.LoadLog.
	r, events, err := zoom.Execute(s, zoom.ExecConfig{RunID: "run1", Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %s (%d log events)\n", r, len(events))

	// 3. Load everything into the provenance system.
	sys := zoom.NewSystem()
	if err := sys.RegisterSpec(s); err != nil {
		log.Fatal(err)
	}
	if err := sys.LoadLog("run1", s.Name(), events); err != nil {
		log.Fatal(err)
	}

	// 4. Only the scientific steps matter to this user; formatting tasks
	// are folded into their composites.
	relevant := []string{"analyze", "report"}
	view, err := zoom.BuildUserView(s, relevant)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user view: %v\n", view)

	// 5. Deep provenance of the final output, through the view.
	final := r.FinalOutputs()[0]
	res, err := sys.DeepProvenance("run1", view, final)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(zoom.ProvenanceText(res))

	// The same query under the administrator view shows every step.
	resAdmin, err := sys.DeepProvenance("run1", zoom.UAdmin(s), final)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view result: %d data objects; UAdmin result: %d data objects\n",
		res.NumData(), resAdmin.NumData())
}
