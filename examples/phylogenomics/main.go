// Phylogenomics: the paper's running example, end to end. Reconstructs
// Figure 1 (the specification), Figure 2 (the run), Joe's and Mary's user
// views (Figure 3), and the provenance answers of Section II, then emits
// the DOT renderings of every artifact.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/zoom"
)

func main() {
	outDir := "out"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	s := zoom.Phylogenomics()
	r := zoom.PhylogenomicsRun()
	fmt.Printf("Figure 1: %s\n", s)
	fmt.Printf("Figure 2: %s\n", r)
	fmt.Println("  (the alignment loop M3 -> M4 -> M5 executed twice: steps S2..S6)")

	sys := zoom.NewSystem()
	must(sys.RegisterSpec(s))
	must(sys.LoadRun(r))

	joe, err := zoom.BuildUserView(s, zoom.JoeRelevant())
	must(err)
	mary, err := zoom.BuildUserView(s, zoom.MaryRelevant())
	must(err)
	must(sys.RegisterView("joe", joe))
	must(sys.RegisterView("mary", mary))

	fmt.Printf("\nJoe's view   (size %d): %v\n", joe.Size(), joe)
	fmt.Printf("Mary's view  (size %d): %v\n", mary.Size(), mary)

	// Section II's contrast on d413.
	fmt.Println("\nimmediate provenance of d413:")
	for _, u := range []struct {
		name string
		v    *zoom.UserView
	}{{"Joe", joe}, {"Mary", mary}} {
		ex, err := sys.ImmediateProvenance("fig2", u.v, "d413")
		must(err)
		fmt.Printf("  %-5s sees execution %s of composite %s with input %s\n",
			u.name, ex.ID, ex.Composite, zoom.FormatDataSet(ex.Inputs))
	}

	// Deep provenance of the final tree d447 — Figure 9.
	fmt.Println("\ndeep provenance of the final tree d447:")
	for _, u := range []struct {
		name string
		v    *zoom.UserView
	}{{"admin", zoom.UAdmin(s)}, {"Joe", joe}, {"Mary", mary}} {
		res, err := sys.DeepProvenance("fig2", u.v, "d447")
		must(err)
		fmt.Printf("  %-5s : %d executions, %d data objects\n",
			u.name, res.NumSteps(), res.NumData())
	}

	// Joe cannot see the loop-internal data; Mary can see d410/d411.
	resJoe, err := sys.DeepProvenance("fig2", joe, "d413")
	must(err)
	resMary, err := sys.DeepProvenance("fig2", mary, "d413")
	must(err)
	fmt.Printf("\nvisible data for d413:\n  Joe  : %s\n  Mary : %s\n",
		zoom.FormatDataSet(resJoe.Data), zoom.FormatDataSet(resMary.Data))

	// Emit DOT files for every figure.
	files := map[string]string{
		"figure1-spec.dot":     zoom.SpecDOT(s),
		"figure2-run.dot":      zoom.RunDOT(r),
		"figure3a-joe.dot":     zoom.ViewDOT("joe", joe),
		"figure3b-mary.dot":    zoom.ViewDOT("mary", mary),
		"figure9-prov-joe.dot": zoom.ProvenanceDOT(resJoe),
	}
	for name, content := range files {
		path := filepath.Join(outDir, name)
		must(os.WriteFile(path, []byte(content), 0o644))
		fmt.Printf("wrote %s\n", path)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
