// Viewswitching: the interactive scenario of Section V.B. A loop-heavy
// Class 4 workflow is executed into a large run; the user then refines the
// granularity of their view step by step — from black box to administrator
// — re-asking the same deep-provenance query. Thanks to the cached UAdmin
// closure (the paper's temporary table), every re-query after the first is
// nearly free, and the result sizes trace the Figure 11 curve.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/zoom"
)

func main() {
	g := zoom.NewGenerator(7)
	class := zoom.WorkflowClasses()[3] // Class4: Loop 50% / Sequence 50%
	s := g.Workflow(class, "loopy")
	fmt.Printf("workflow: %s\n", s)

	r, _, err := g.Run(s, zoom.RunClasses()[1], "bigrun") // medium kind
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run:      %s\n\n", r)

	sys := zoom.NewSystem()
	must(sys.RegisterSpec(s))
	must(sys.LoadRun(r))
	final := r.FinalOutputs()[0]

	mods := s.ModuleNames()
	fmt.Printf("%-12s %-10s %-12s %-12s %s\n", "view", "size", "executions", "data items", "query time")
	for pct := 0; pct <= 100; pct += 25 {
		relevant := mods[:len(mods)*pct/100]
		v, err := zoom.BuildUserView(s, relevant)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := sys.DeepProvenance("bigrun", v, final)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%3d%% rel.   %-10d %-12d %-12d %s\n",
			pct, v.Size(), res.NumSteps(), res.NumData(), elapsed.Round(time.Microsecond))
	}

	hits, misses := sys.CacheStats()
	fmt.Printf("\nclosure cache: %d hits, %d misses — only the first query paid for the recursion;\n", hits, misses)
	fmt.Println("every later view switch re-projected the cached UAdmin closure (the paper's ~13 ms result).")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
