// Package repro_test holds the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper (see DESIGN.md section 5 for
// the experiment index), plus the ablation benches for the design choices
// called out there. `go test -bench=. -benchmem` regenerates every number;
// `go run ./cmd/zoombench` prints the same experiments as paper-style
// tables with result *sizes* as well as times.
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/run"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/warehouse"
	"repro/internal/wflog"
	"repro/zoom/client"
)

// BenchmarkTable1WorkflowClasses measures workload generation per Table I
// class (specification synthesis from pattern frequencies).
func BenchmarkTable1WorkflowClasses(b *testing.B) {
	for _, class := range gen.Classes() {
		b.Run(class.Name, func(b *testing.B) {
			g := gen.NewGenerator(1)
			for i := 0; i < b.N; i++ {
				s := g.Workflow(class, "bench")
				if s.NumModules() < class.TargetModules {
					b.Fatal("undersized workflow")
				}
			}
		})
	}
}

// BenchmarkTable2RunClasses measures run synthesis (loop unrolling, data
// allocation, log emission) per Table II kind.
func BenchmarkTable2RunClasses(b *testing.B) {
	for _, rc := range gen.RunClasses() {
		if rc.Name == "large" {
			rc.MaxNodes = 3000 // keep the harness snappy; -bench can be re-run with Full()
		}
		b.Run(rc.Name, func(b *testing.B) {
			g := gen.NewGenerator(2)
			s := g.Workflow(gen.Class4(), "bench")
			b.ResetTimer()
			steps := 0
			for i := 0; i < b.N; i++ {
				r, _, err := g.Run(s, rc, "bench-run")
				if err != nil {
					b.Fatal(err)
				}
				steps = r.NumSteps()
			}
			b.ReportMetric(float64(steps), "steps/run")
		})
	}
}

// BenchmarkViewBuilderScalability is experiment E1: RelevUserViewBuilder
// on randomized specifications of growing size (the paper sweeps 100-1000
// nodes and reports < 80 ms per execution).
func BenchmarkViewBuilderScalability(b *testing.B) {
	for _, nodes := range []int{100, 300, 1000} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			g := gen.NewGenerator(3)
			class := gen.Class3()
			class.TargetModules = nodes
			s := g.Workflow(class, "scale")
			rel := g.RandomRelevant(s, 20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildRelevant(s, rel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkViewBuilderOptimality is experiment E2: the builder across the
// relevant-percentage sweep, reporting the surplus composites beyond |R|.
func BenchmarkViewBuilderOptimality(b *testing.B) {
	for _, pct := range []int{10, 50, 90} {
		b.Run(fmt.Sprintf("pct=%d", pct), func(b *testing.B) {
			g := gen.NewGenerator(4)
			s := g.Workflow(gen.Class2(), "opt")
			rel := g.RandomRelevant(s, pct)
			extra := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := core.BuildRelevant(s, rel)
				if err != nil {
					b.Fatal(err)
				}
				extra = v.Size() - len(rel)
			}
			b.ReportMetric(float64(extra), "extra-composites")
		})
	}
}

// fig10Site prepares one (workflow, run, warehouse) fixture.
type fig10Site struct {
	s     *spec.Spec
	r     *run.Run
	e     *provenance.Engine
	w     *warehouse.Warehouse
	root  string
	admin *core.UserView
	bio   *core.UserView
	bb    *core.UserView
}

func newFig10Site(b *testing.B, class gen.WorkflowClass, rc gen.RunClass, seed int64) *fig10Site {
	b.Helper()
	g := gen.NewGenerator(seed)
	site := &fig10Site{}
	site.s = g.Workflow(class, "f10")
	var err error
	site.r, _, err = g.Run(site.s, rc, "f10-run")
	if err != nil {
		b.Fatal(err)
	}
	site.w = warehouse.New(0)
	if err := site.w.RegisterSpec(site.s); err != nil {
		b.Fatal(err)
	}
	if err := site.w.LoadRun(site.r); err != nil {
		b.Fatal(err)
	}
	site.e = provenance.NewEngine(site.w)
	finals := site.r.FinalOutputs()
	site.root = finals[len(finals)-1]
	site.admin = core.UAdmin(site.s)
	if site.bio, err = core.BuildRelevant(site.s, gen.UBioRelevant(site.s)); err != nil {
		b.Fatal(err)
	}
	if site.bb, err = core.UBlackBox(site.s); err != nil {
		b.Fatal(err)
	}
	return site
}

// BenchmarkFig10QueryResultSize is Figure 10: deep provenance of the final
// output under UAdmin / UBio / UBlackBox. The reported custom metric is
// the result size in data items — the quantity the figure plots.
func BenchmarkFig10QueryResultSize(b *testing.B) {
	rc := gen.Medium()
	for _, class := range gen.Classes() {
		site := newFig10Site(b, class, rc, 10)
		for _, v := range []struct {
			name string
			view *core.UserView
		}{{"UAdmin", site.admin}, {"UBio", site.bio}, {"UBlackBox", site.bb}} {
			b.Run(class.Name+"/"+v.name, func(b *testing.B) {
				size := 0
				for i := 0; i < b.N; i++ {
					res, err := site.e.DeepProvenance(site.r.ID(), v.view, site.root)
					if err != nil {
						b.Fatal(err)
					}
					size = res.NumData()
				}
				b.ReportMetric(float64(size), "data-items")
			})
		}
	}
}

// BenchmarkQueryResponseTime is experiment E3: the cold deep-provenance
// query (cache reset every iteration) per run kind.
func BenchmarkQueryResponseTime(b *testing.B) {
	kinds := gen.RunClasses()
	kinds[2].MaxNodes = 3000
	for _, rc := range kinds {
		b.Run(rc.Name, func(b *testing.B) {
			site := newFig10Site(b, gen.Class4(), rc, 11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				site.w.ResetCache()
				if _, err := site.e.DeepProvenance(site.r.ID(), site.admin, site.root); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkViewSwitch is experiment E4: re-answering the query under a
// different view with the UAdmin closure already cached (the paper's 13 ms
// interactive switch).
func BenchmarkViewSwitch(b *testing.B) {
	kinds := gen.RunClasses()
	kinds[2].MaxNodes = 3000
	for _, rc := range kinds {
		b.Run(rc.Name, func(b *testing.B) {
			site := newFig10Site(b, gen.Class4(), rc, 12)
			// Prime the closure cache and the mapping caches.
			if _, err := site.e.DeepProvenance(site.r.ID(), site.admin, site.root); err != nil {
				b.Fatal(err)
			}
			views := []*core.UserView{site.bio, site.bb}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := site.e.DeepProvenance(site.r.ID(), views[i%2], site.root); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11Granularity is Figure 11: result size (and query cost) as
// the percentage of relevant modules grows.
func BenchmarkFig11Granularity(b *testing.B) {
	site := newFig10Site(b, gen.Class4(), gen.Medium(), 13)
	g := gen.NewGenerator(14)
	for _, pct := range []int{0, 30, 60, 100} {
		rel := g.RandomRelevant(site.s, pct)
		v, err := core.BuildRelevant(site.s, rel)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pct=%d", pct), func(b *testing.B) {
			size := 0
			for i := 0; i < b.N; i++ {
				res, err := site.e.DeepProvenance(site.r.ID(), v, site.root)
				if err != nil {
					b.Fatal(err)
				}
				size = res.NumData()
			}
			b.ReportMetric(float64(size), "data-items")
		})
	}
}

// newCompactSite is newFig10Site with the warehouse's compact index
// switched on or off before the run is loaded — the two sides of the P1
// comparison. The same seed yields the identical workflow and run, so the
// legacy and indexed variants answer the same queries.
func newCompactSite(b *testing.B, rc gen.RunClass, seed int64, indexed bool) *fig10Site {
	b.Helper()
	g := gen.NewGenerator(seed)
	site := &fig10Site{}
	site.s = g.Workflow(gen.Class4(), "p1")
	var err error
	site.r, _, err = g.Run(site.s, rc, "p1-run")
	if err != nil {
		b.Fatal(err)
	}
	site.w = warehouse.New(0)
	site.w.SetCompactIndex(indexed)
	if err := site.w.RegisterSpec(site.s); err != nil {
		b.Fatal(err)
	}
	if err := site.w.LoadRun(site.r); err != nil {
		b.Fatal(err)
	}
	site.e = provenance.NewEngine(site.w)
	finals := site.r.FinalOutputs()
	site.root = finals[len(finals)-1]
	site.admin = core.UAdmin(site.s)
	if site.bio, err = core.BuildRelevant(site.s, gen.UBioRelevant(site.s)); err != nil {
		b.Fatal(err)
	}
	if site.bb, err = core.UBlackBox(site.s); err != nil {
		b.Fatal(err)
	}
	return site
}

// compactModes are the two sides of the P1 experiment.
var compactModes = []struct {
	name    string
	indexed bool
}{{"legacy", false}, {"indexed", true}}

// BenchmarkCompactColdQuery (P1) is the tentpole comparison: a cold deep
// provenance query (UAdmin closure compute + projection, cache reset each
// iteration) on the legacy string/map path versus the interned CSR/bitset
// path, per Table II run class. Run with -benchmem: the alloc column is
// the headline alongside ns/op.
func BenchmarkCompactColdQuery(b *testing.B) {
	kinds := gen.RunClasses()
	kinds[2].MaxNodes = 3000
	for _, rc := range kinds {
		for _, mode := range compactModes {
			b.Run(rc.Name+"/"+mode.name, func(b *testing.B) {
				site := newCompactSite(b, rc, 21, mode.indexed)
				// Warm mapping + projector; the loop then measures only the
				// per-query path.
				if _, err := site.e.DeepProvenance(site.r.ID(), site.bio, site.root); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					site.w.ResetCache()
					if _, err := site.e.DeepProvenance(site.r.ID(), site.bio, site.root); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCompactViewSwitch (P1) measures the warm half: the closure is
// cached and each iteration re-projects it under an alternating view — the
// paper's interactive view switch — on both representations.
func BenchmarkCompactViewSwitch(b *testing.B) {
	kinds := gen.RunClasses()
	kinds[2].MaxNodes = 3000
	for _, rc := range kinds {
		for _, mode := range compactModes {
			b.Run(rc.Name+"/"+mode.name, func(b *testing.B) {
				site := newCompactSite(b, rc, 22, mode.indexed)
				if _, err := site.e.DeepProvenance(site.r.ID(), site.admin, site.root); err != nil {
					b.Fatal(err)
				}
				views := []*core.UserView{site.bio, site.bb}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := site.e.DeepProvenance(site.r.ID(), views[i%2], site.root); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCompactDerivation (P1) covers the forward direction: cold deep
// derivation of an external input, both representations.
func BenchmarkCompactDerivation(b *testing.B) {
	rc := gen.Medium()
	for _, mode := range compactModes {
		b.Run(mode.name, func(b *testing.B) {
			site := newCompactSite(b, rc, 23, mode.indexed)
			ins := site.r.ExternalInputs()
			if len(ins) == 0 {
				b.Skip("run has no external inputs")
			}
			d := ins[0]
			if _, err := site.e.DeepDerivation(site.r.ID(), site.bio, d); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				site.w.ResetCache()
				if _, err := site.e.DeepDerivation(site.r.ID(), site.bio, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// newLabelSite is newFig10Site with the warehouse's reachability label
// index switched on or off before the run is loaded — the two sides of
// the P2 comparison. The same seed yields the identical workflow and run.
func newLabelSite(b *testing.B, class gen.WorkflowClass, rc gen.RunClass, seed int64, labels bool) *fig10Site {
	b.Helper()
	g := gen.NewGenerator(seed)
	site := &fig10Site{}
	site.s = g.Workflow(class, "p2")
	var err error
	site.r, _, err = g.Run(site.s, rc, "p2-run")
	if err != nil {
		b.Fatal(err)
	}
	site.w = warehouse.New(0)
	site.w.SetLabelIndex(labels)
	if err := site.w.RegisterSpec(site.s); err != nil {
		b.Fatal(err)
	}
	if err := site.w.LoadRun(site.r); err != nil {
		b.Fatal(err)
	}
	if labels && site.w.RunLabels(site.r.ID()) == nil {
		b.Fatalf("label builder declined the %s run", rc.Name)
	}
	site.e = provenance.NewEngine(site.w)
	finals := site.r.FinalOutputs()
	site.root = finals[len(finals)-1]
	site.admin = core.UAdmin(site.s)
	if site.bio, err = core.BuildRelevant(site.s, gen.UBioRelevant(site.s)); err != nil {
		b.Fatal(err)
	}
	return site
}

// labelModes are the two sides of the P2 experiment.
var labelModes = []struct {
	name   string
	labels bool
}{{"bfs", false}, {"labels", true}}

// BenchmarkLabelsColdQuery (P2) compares the cold deep-provenance query
// (UAdmin closure compute + projection, cache reset each iteration) on the
// bitset BFS path versus the reachability-label path, per Table II run
// class on the loop profile (Class4 — the largest runs).
func BenchmarkLabelsColdQuery(b *testing.B) {
	kinds := gen.RunClasses()
	kinds[2].MaxNodes = 3000
	for _, rc := range kinds {
		for _, mode := range labelModes {
			b.Run(rc.Name+"/"+mode.name, func(b *testing.B) {
				site := newLabelSite(b, gen.Class4(), rc, 51, mode.labels)
				strat := warehouse.StrategyBFS
				if mode.labels {
					strat = warehouse.StrategyLabels
				}
				if _, err := site.e.DeepProvenanceStrategy(site.r.ID(), site.bio, site.root, strat); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					site.w.ResetCache()
					if _, err := site.e.DeepProvenanceStrategy(site.r.ID(), site.bio, site.root, strat); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLabelsDerivation (P2) covers the forward direction: cold deep
// derivation of an external input (suffix scans vs forward BFS).
func BenchmarkLabelsDerivation(b *testing.B) {
	rc := gen.Medium()
	for _, mode := range labelModes {
		b.Run(mode.name, func(b *testing.B) {
			site := newLabelSite(b, gen.Class4(), rc, 52, mode.labels)
			ins := site.r.ExternalInputs()
			if len(ins) == 0 {
				b.Skip("run has no external inputs")
			}
			d := ins[0]
			strat := warehouse.StrategyBFS
			if mode.labels {
				strat = warehouse.StrategyLabels
			}
			if _, err := site.e.DeepDerivationStrategy(site.r.ID(), site.bio, d, strat); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				site.w.ResetCache()
				if _, err := site.e.DeepDerivationStrategy(site.r.ID(), site.bio, d, strat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLabelsBuild (P2) prices the one-time label build the load path
// pays per run — the cost SetLabelIndex amortizes over every later query.
func BenchmarkLabelsBuild(b *testing.B) {
	kinds := gen.RunClasses()
	kinds[2].MaxNodes = 3000
	for _, rc := range kinds {
		b.Run(rc.Name, func(b *testing.B) {
			g := gen.NewGenerator(53)
			s := g.Workflow(gen.Class4(), "p2b")
			r, _, err := g.Run(s, rc, "p2b-run")
			if err != nil {
				b.Fatal(err)
			}
			ix := r.Index()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ix.BuildLabels() == nil {
					b.Fatal("label builder declined the run")
				}
			}
		})
	}
}

// BenchmarkAblationNRPath (A1) compares the memoized nr-path fronts the
// Analysis precomputes against answering each rpred/rsucc membership with
// a fresh filtered BFS — the naive alternative the O(|N|²+|E|) bound of
// the paper rules out.
func BenchmarkAblationNRPath(b *testing.B) {
	g := gen.NewGenerator(15)
	class := gen.Class3()
	class.TargetModules = 150
	s := g.Workflow(class, "nr")
	rel := g.RandomRelevant(s, 20)
	relSet := make(map[string]bool, len(rel))
	for _, r := range rel {
		relSet[r] = true
	}
	b.Run("memoizedFronts", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, err := core.NewAnalysis(s, rel)
			if err != nil {
				b.Fatal(err)
			}
			for _, n := range s.ModuleNames() {
				_ = a.RPred(n)
				_ = a.RSucc(n)
			}
		}
	})
	b.Run("perQueryBFS", func(b *testing.B) {
		avoid := func(n string) bool { return relSet[n] }
		sources := append(append([]string(nil), rel...), spec.Input)
		targets := append(append([]string(nil), rel...), spec.Output)
		gg := s.Graph()
		for i := 0; i < b.N; i++ {
			for _, n := range s.ModuleNames() {
				for _, r := range sources {
					_ = gg.HasPathAvoiding(r, n, avoid)
				}
				for _, r := range targets {
					_ = gg.HasPathAvoiding(n, r, avoid)
				}
			}
		}
	})
}

// BenchmarkAblationStrategy (A2) compares the paper's winning evaluation
// strategy (cached UAdmin closure, then project) against per-view direct
// recursion and against the projected strategy with the cache disabled.
func BenchmarkAblationStrategy(b *testing.B) {
	site := newFig10Site(b, gen.Class4(), gen.Medium(), 16)
	// Warm every mapping once so the comparison isolates query evaluation.
	if _, err := site.e.DeepProvenance(site.r.ID(), site.bio, site.root); err != nil {
		b.Fatal(err)
	}
	if _, err := site.e.DeepProvenanceDirect(site.r.ID(), site.bio, site.root); err != nil {
		b.Fatal(err)
	}
	b.Run("projectCached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := site.e.DeepProvenance(site.r.ID(), site.bio, site.root); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("projectCold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			site.w.ResetCache()
			if _, err := site.e.DeepProvenance(site.r.ID(), site.bio, site.root); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("directRecursion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := site.e.DeepProvenanceDirect(site.r.ID(), site.bio, site.root); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHarnessEndToEnd times the whole Section V sweep at CI scale,
// pinning the cost of `zoombench` defaults.
func BenchmarkHarnessEndToEnd(b *testing.B) {
	o := bench.Default()
	o.WorkflowsPerClass = 1
	o.RunsPerKind = 1
	o.Trials = 1
	o.ScaleSpecs = 4
	o.MaxSpecNodes = 200
	o.LargeRunCap = 500
	for i := 0; i < b.N; i++ {
		if got := bench.RunAll(o); len(got) != 14 {
			b.Fatal("missing reports")
		}
	}
}

// ingestImages builds a multi-run warehouse for one Table II class and
// returns its v1 (JSON) and v2 (binary) snapshot images.
func ingestImages(b *testing.B, rc gen.RunClass, seed int64) (v1, v2 []byte) {
	b.Helper()
	g := gen.NewGenerator(seed)
	s := g.Workflow(gen.Class4(), "ingest-"+rc.Name)
	w := warehouse.New(0)
	if err := w.RegisterSpec(s); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r, _, err := g.Run(s, rc, fmt.Sprintf("ingest-%s-r%d", rc.Name, i))
		if err != nil {
			b.Fatal(err)
		}
		if err := w.LoadRun(r); err != nil {
			b.Fatal(err)
		}
	}
	var b1, b2 bytes.Buffer
	if err := w.Save(&b1); err != nil {
		b.Fatal(err)
	}
	if err := w.SaveBinary(&b2); err != nil {
		b.Fatal(err)
	}
	return b1.Bytes(), b2.Bytes()
}

// BenchmarkIngestSnapshotLoad (L1) is the tentpole comparison: a full
// snapshot load — decode, reconstruct, validate, conformance-check, compact
// index — per format and worker mode, per Table II run class. Run with
// -benchmem: the v2 rows should show both less time and far fewer
// allocations than the v1 rows.
func BenchmarkIngestSnapshotLoad(b *testing.B) {
	kinds := gen.RunClasses()
	kinds[2].MaxNodes = 3000
	for _, rc := range kinds {
		v1, v2 := ingestImages(b, rc, 31)
		for _, mode := range []struct {
			name    string
			image   []byte
			workers int
		}{
			{"v1/serial", v1, 1},
			{"v1/parallel", v1, 0},
			{"v2/serial", v2, 1},
			{"v2/parallel", v2, 0},
		} {
			b.Run(rc.Name+"/"+mode.name, func(b *testing.B) {
				b.SetBytes(int64(len(mode.image)))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := warehouse.LoadWith(bytes.NewReader(mode.image), 0,
						warehouse.LoadOptions{Workers: mode.workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkIngestSnapshotSave measures the write side of both formats on
// the medium class.
func BenchmarkIngestSnapshotSave(b *testing.B) {
	v1, _ := ingestImages(b, gen.Medium(), 32)
	w, err := warehouse.Load(bytes.NewReader(v1), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("v1", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := w.Save(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := w.SaveBinary(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIngestLogStream measures streaming log ingestion: a JSON-lines
// event log is decoded and fed straight into run construction without ever
// materializing an event slice.
func BenchmarkIngestLogStream(b *testing.B) {
	g := gen.NewGenerator(33)
	s := g.Workflow(gen.Class4(), "ingest-log")
	r, _, err := g.Run(s, gen.Medium(), "ingest-log-r")
	if err != nil {
		b.Fatal(err)
	}
	events, err := r.ToLog()
	if err != nil {
		b.Fatal(err)
	}
	var log bytes.Buffer
	if err := wflog.Write(&log, events); err != nil {
		b.Fatal(err)
	}
	image := log.Bytes()
	b.SetBytes(int64(len(image)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := warehouse.New(0)
		if err := w.RegisterSpec(s); err != nil {
			b.Fatal(err)
		}
		if _, err := w.LoadLogReader(r.ID(), s.Name(), bytes.NewReader(image)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOverhead (O1) pins the cost of the observability layer on the
// deep-provenance query. "detached" is the default state with no registry
// attached — instrumented code pays only a pointer load and a few nil
// checks, never a clock read — and "attached" records every counter and
// histogram with per-stage timing.
//
// The headline comparison is "cold" (closure compute + projection, cache
// reset each iteration — the paper's deep provenance query, same shape as
// BenchmarkQueryResponseTime): attached must stay within 2% of detached
// there. "warm" is the microsecond-scale cached view switch, where the
// fixed ~3 clock reads + histogram updates of an attached registry are a
// measurable fraction of the op — EXPERIMENTS.md section O1 records the
// absolute cost; detached stays at baseline in both.
//
// "traced" (O2) additionally builds a request span tree per query — an
// obs.Trace, a context carrying it, and one span per engine stage — the
// full per-request cost the HTTP server pays for X-Zoom-Trace-Id and the
// slow-query log. Untraced queries through the same instrumented code
// (detached/attached) must not regress: spans cost nothing until a trace
// is actually in the context.
func BenchmarkObsOverhead(b *testing.B) {
	for _, mode := range []struct {
		name   string
		reg    *obs.Registry
		traced bool
	}{
		{"detached", nil, false},
		{"attached", obs.NewRegistry(), false},
		{"traced", obs.NewRegistry(), true},
	} {
		site := newFig10Site(b, gen.Class4(), gen.Medium(), 41)
		site.e.AttachMetrics(mode.reg)
		site.w.AttachMetrics(mode.reg)
		// Prime the mapping caches so both halves measure only the query.
		if _, err := site.e.DeepProvenance(site.r.ID(), site.bio, site.root); err != nil {
			b.Fatal(err)
		}
		query := func(v *core.UserView) error {
			if !mode.traced {
				_, err := site.e.DeepProvenance(site.r.ID(), v, site.root)
				return err
			}
			tr := obs.NewTrace("bench.query")
			ctx := tr.Context(context.Background())
			_, err := site.e.DeepProvenanceCtx(ctx, site.r.ID(), v, site.root)
			tr.Finish()
			return err
		}
		b.Run("cold/"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				site.w.ResetCache()
				if err := query(site.admin); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("warm/"+mode.name, func(b *testing.B) {
			if _, err := site.e.DeepProvenance(site.r.ID(), site.admin, site.root); err != nil {
				b.Fatal(err)
			}
			views := []*core.UserView{site.bio, site.bb}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := query(views[i%2]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Routed (O3): the same query through a 2-shard router, tracing off vs
	// ?trace=1 with cross-process stitching. "routed/off" is every
	// production request's state — the span machinery, the slowlog ring,
	// and the per-replica instruments are all live but dormant, and the
	// row must sit within noise of what PR 8's uninstrumented router paid
	// (zoombench -only O3 publishes the absolute comparison).
	g := gen.NewGenerator(37)
	sp := g.Workflow(gen.Classes()[0], "bench-obs-routed")
	full := warehouse.New(0)
	if err := full.RegisterSpec(sp); err != nil {
		b.Fatal(err)
	}
	type target struct{ run, data string }
	var targets []target
	for i := 0; i < 8; i++ {
		r, _, err := g.Run(sp, gen.Small(), fmt.Sprintf("ob-run-%02d", i))
		if err != nil {
			b.Fatal(err)
		}
		if err := full.LoadRun(r); err != nil {
			b.Fatal(err)
		}
		targets = append(targets, target{run: r.ID(), data: r.AllData()[0]})
	}
	c := shardCluster(b, full, 2)
	ctx := context.Background()
	for _, traced := range []bool{false, true} {
		name := "routed/off"
		if traced {
			name = "routed/traced"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t := targets[i%len(targets)]
				if _, err := c.Query(ctx, client.QueryRequest{Run: t.run, Data: t.data, Trace: traced}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// mmapImage saves a multi-run warehouse as a v3 snapshot file and returns
// the path plus the id of one run and a final data object of it to query.
func mmapImage(b *testing.B, rc gen.RunClass, seed int64) (path, runID, data string, v2 []byte) {
	b.Helper()
	g := gen.NewGenerator(seed)
	s := g.Workflow(gen.Class4(), "mmap-"+rc.Name)
	w := warehouse.New(0)
	if err := w.RegisterSpec(s); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r, _, err := g.Run(s, rc, fmt.Sprintf("mmap-%s-r%d", rc.Name, i))
		if err != nil {
			b.Fatal(err)
		}
		if err := w.LoadRun(r); err != nil {
			b.Fatal(err)
		}
		if finals := r.FinalOutputs(); len(finals) > 0 {
			runID, data = r.ID(), finals[len(finals)-1]
		}
	}
	var v2buf bytes.Buffer
	if err := w.SaveBinary(&v2buf); err != nil {
		b.Fatal(err)
	}
	path = filepath.Join(b.TempDir(), rc.Name+".v3")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.SaveV3(f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return path, runID, data, v2buf.Bytes()
}

// BenchmarkMmapOpen (L2) is the v3 tentpole comparison: time-to-ready of
// the mmap open against the v2 full load, plus the per-run lazy
// materialization plus cache-cold query the first request pays. The open
// rows must stay flat as run sizes grow — the open reads the catalog only.
func BenchmarkMmapOpen(b *testing.B) {
	kinds := gen.RunClasses()
	kinds[2].MaxNodes = 3000
	for _, rc := range kinds {
		path, runID, data, v2 := mmapImage(b, rc, 41)
		b.Run(rc.Name+"/v2-load", func(b *testing.B) {
			b.SetBytes(int64(len(v2)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := warehouse.LoadWith(bytes.NewReader(v2), 0, warehouse.LoadOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(rc.Name+"/v3-open", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w, err := warehouse.OpenV3(path, 0, warehouse.LoadOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(rc.Name+"/v3-first-query", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w, err := warehouse.OpenV3(path, 0, warehouse.LoadOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.DeepProvenance(runID, data); err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// shardCluster boots n workers over ring-split subsets of full plus a
// router in front, returning a client against the router. Cleanup is
// registered on b.
func shardCluster(b *testing.B, full *warehouse.Warehouse, n int) *client.Client {
	b.Helper()
	ring, err := cluster.NewRing(n, 0)
	if err != nil {
		b.Fatal(err)
	}
	urls := make([]string, n)
	for k := 0; k < n; k++ {
		sub, err := full.Subset(func(id string) bool { return ring.Place(id) == k })
		if err != nil {
			b.Fatal(err)
		}
		s, err := server.New(obs.NewRegistry(), server.Config{})
		if err != nil {
			b.Fatal(err)
		}
		s.SetEngine(provenance.NewEngine(sub))
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(ts.Close)
		urls[k] = ts.URL
	}
	rt, err := cluster.New(obs.NewRegistry(), cluster.Config{Workers: urls})
	if err != nil {
		b.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	b.Cleanup(front.Close)
	return client.New(front.URL, client.Options{})
}

// BenchmarkShardedRouting (S1) isolates the router's own cost: a warm deep
// query answered directly by one worker vs through the consistent-hash
// router at 1 and 4 shards (the delta is the forwarding hop), plus the
// scatter-gather /v1/runs merge across 4 shards. The throughput-scaling
// claim itself lives in zoombench -only S1, which emulates per-worker
// machine capacity.
func BenchmarkShardedRouting(b *testing.B) {
	g := gen.NewGenerator(31)
	sp := g.Workflow(gen.Classes()[0], "bench-shard")
	full := warehouse.New(0)
	if err := full.RegisterSpec(sp); err != nil {
		b.Fatal(err)
	}
	type target struct{ run, data string }
	var targets []target
	for i := 0; i < 8; i++ {
		r, _, err := g.Run(sp, gen.Small(), fmt.Sprintf("bs-run-%02d", i))
		if err != nil {
			b.Fatal(err)
		}
		if err := full.LoadRun(r); err != nil {
			b.Fatal(err)
		}
		targets = append(targets, target{run: r.ID(), data: r.AllData()[0]})
	}
	ctx := context.Background()

	s, err := server.New(obs.NewRegistry(), server.Config{})
	if err != nil {
		b.Fatal(err)
	}
	s.SetEngine(provenance.NewEngine(full))
	direct := httptest.NewServer(s.Handler())
	b.Cleanup(direct.Close)
	dc := client.New(direct.URL, client.Options{})

	query := func(b *testing.B, c *client.Client) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := targets[i%len(targets)]
			if _, err := c.Query(ctx, client.QueryRequest{Run: t.run, Data: t.data}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("direct", func(b *testing.B) { query(b, dc) })
	for _, n := range []int{1, 4} {
		c := shardCluster(b, full, n)
		b.Run(fmt.Sprintf("routed-%dshard", n), func(b *testing.B) { query(b, c) })
		if n == 4 {
			b.Run("runs-gather-4shard", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rr, err := c.Runs(ctx)
					if err != nil {
						b.Fatal(err)
					}
					if rr.Count != len(targets) {
						b.Fatalf("merged %d runs, want %d", rr.Count, len(targets))
					}
				}
			})
		}
	}
}

// replicaCluster boots a 2-shard × 2-replica cluster over full's runs
// (each replica serving its own subset copy, as real replicas serve
// identical snapshot copies) and returns a router client, the router,
// and the per-shard replica servers.
func replicaCluster(b *testing.B, full *warehouse.Warehouse, cfg cluster.Config) (*client.Client, *cluster.Router, [][]*httptest.Server) {
	const shards = 2
	ring, err := cluster.NewRing(shards, 0)
	if err != nil {
		b.Fatal(err)
	}
	groups := make([][]string, shards)
	servers := make([][]*httptest.Server, shards)
	for k := 0; k < shards; k++ {
		for j := 0; j < 2; j++ {
			sub, err := full.Subset(func(id string) bool { return ring.Place(id) == k })
			if err != nil {
				b.Fatal(err)
			}
			s, err := server.New(obs.NewRegistry(), server.Config{})
			if err != nil {
				b.Fatal(err)
			}
			s.SetEngine(provenance.NewEngine(sub))
			ts := httptest.NewServer(s.Handler())
			b.Cleanup(ts.Close)
			groups[k] = append(groups[k], ts.URL)
			servers[k] = append(servers[k], ts)
		}
	}
	cfg.Shards = groups
	rt, err := cluster.New(obs.NewRegistry(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	b.Cleanup(front.Close)
	return client.New(front.URL, client.Options{}), rt, servers
}

// BenchmarkReplicatedRouting (S2) isolates the replica machinery's cost:
// a warm deep query through a 2-shard × 2-replica router on the healthy
// path, on the failover path (preferred replicas dead, breakers open),
// and on the response-cache hit path. The availability and tail-latency
// claims live in zoombench -only S2, which emulates per-worker capacity.
func BenchmarkReplicatedRouting(b *testing.B) {
	g := gen.NewGenerator(37)
	sp := g.Workflow(gen.Classes()[0], "bench-replica")
	full := warehouse.New(0)
	if err := full.RegisterSpec(sp); err != nil {
		b.Fatal(err)
	}
	type target struct{ run, data string }
	var targets []target
	for i := 0; i < 8; i++ {
		r, _, err := g.Run(sp, gen.Small(), fmt.Sprintf("br-run-%02d", i))
		if err != nil {
			b.Fatal(err)
		}
		if err := full.LoadRun(r); err != nil {
			b.Fatal(err)
		}
		targets = append(targets, target{run: r.ID(), data: r.AllData()[0]})
	}
	ctx := context.Background()
	query := func(b *testing.B, c *client.Client) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := targets[i%len(targets)]
			if _, err := c.Query(ctx, client.QueryRequest{Run: t.run, Data: t.data}); err != nil {
				b.Fatal(err)
			}
		}
	}

	healthy, _, _ := replicaCluster(b, full, cluster.Config{})
	b.Run("routed-2x2", func(b *testing.B) { query(b, healthy) })

	failover, _, servers := replicaCluster(b, full, cluster.Config{})
	for _, g := range servers {
		g[0].CloseClientConnections()
		g[0].Close()
	}
	// Warm the breakers so the steady state measured is open-circuit
	// candidate selection, not the first failed dials.
	for i := 0; i < 4; i++ {
		t := targets[i%len(targets)]
		if _, err := failover.Query(ctx, client.QueryRequest{Run: t.run, Data: t.data}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("failover-2x2", func(b *testing.B) { query(b, failover) })

	cached, rt, _ := replicaCluster(b, full, cluster.Config{CacheEntries: 1024})
	// Prime every target so the measured path is pure cache hits.
	for _, t := range targets {
		if _, err := cached.Query(ctx, client.QueryRequest{Run: t.run, Data: t.data}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cache-hit", func(b *testing.B) {
		query(b, cached)
		if rt.Registry().Snapshot().Counters["router.cache_hits"] == 0 {
			b.Fatal("cache-hit bench never hit the cache")
		}
	})
}
